//===- engine/DeltaPlanner.h - Cross-version incremental planning ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The delta planner: carries dependence results across program versions.
///
/// A BaselineResult is a portable snapshot of one analysis run, keyed by
/// the canonical pair fingerprints of src/deps/Fingerprint.h: for every
/// pair group the answers to all of its queries (post-refinement,
/// post-cover, pre-kill), and for every kill group the records plus the
/// final liveness state of its members. "Portable" means access pointers
/// are replaced by roles and positions, so an outcome recorded against
/// one program version can be rebound to the accesses of another.
///
/// When DependenceEngine::analyze runs with a baseline, it classifies
/// each pair group of the new program:
///
///   reused   -- fingerprint matches a baseline outcome; the stored
///               answers are materialized and the solve is skipped.
///   resolved -- no fingerprint match, but the pair's array appears in
///               the baseline (an edited pair): solved from scratch.
///   new      -- the pair's array is new to the program: solved from
///               scratch.
///   removed  -- baseline fingerprints no current pair matched.
///
/// Because equal fingerprints imply byte-identical solver inputs and the
/// engine's merge order is positional, the merged result is guaranteed
/// byte-identical to a from-scratch run no matter how many pairs were
/// reused. The classification is metrics-level only: a misclassification
/// (e.g. resolved vs new after an array rename) can never change results,
/// and a reuse can only happen on an exact fingerprint match.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ENGINE_DELTAPLANNER_H
#define OMEGA_ENGINE_DELTAPLANNER_H

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace omega {
namespace ir {
struct Access;
}
namespace deps {
struct Dependence;
}
namespace engine {

//===----------------------------------------------------------------------===//
// Portable outcome records
//===----------------------------------------------------------------------===//

/// Mirror of omega::IntRange with no dependence on the solver headers.
struct PortableRange {
  bool HasMin = false, HasMax = false;
  int64_t Min = 0, Max = 0;
  bool Empty = true;
};

/// Mirror of deps::DepSplit (Dir ranges flattened to PortableRange).
struct PortableSplit {
  uint32_t Level = 0;
  std::vector<PortableRange> Dir;
  bool Dead = false;
  char DeadReason = 0;
  bool Refined = false;
};

/// The answer to one pair query, with accesses replaced by roles:
/// role 0 is the canonical-first instance of the pair fingerprint,
/// role 1 the canonical-second (equal to 0 for self pairs).
struct PortableDep {
  uint8_t Kind = 0; ///< deps::DepKind as an integer
  uint8_t SrcRole = 0;
  uint8_t DstRole = 0;
  bool Present = false; ///< false: the query produced no dependence
  bool Covers = false;
  bool CoverLoopIndependent = false;
  std::vector<PortableSplit> Splits;
};

/// Everything phase 1 + phase 2 produce for one pair group: the answers
/// to all of its queries (in ask order) and, when the group contains a
/// flow task, the PairRecord flags phase 2 accumulated.
struct PairOutcome {
  std::vector<PortableDep> Queries;
  bool HasFlowRecord = false;
  bool RecHasFlow = false;
  bool RecUsedGeneralTest = false;
  bool RecSplitVectors = false;
};

/// One kill attempt, with writes identified by their position in the
/// read's array write list (enumeration order).
struct PortableKillRecord {
  uint32_t VictimPos = 0;
  uint32_t KillerPos = 0;
  bool UsedOmega = false;
  bool Killed = false;
};

/// Phase 3's effect on one kill group (all live flow deps into one read):
/// the kill records in emission order plus the final per-split liveness of
/// every member dependence, listed in the group's dep-index order.
struct KillGroupOutcome {
  struct DepState {
    uint32_t WritePos = 0; ///< Src's position in the array's write list
    /// (Dead, DeadReason) per split, post phase 3.
    std::vector<std::pair<bool, char>> Splits;
  };
  std::vector<PortableKillRecord> Records;
  std::vector<DepState> States;
};

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

/// The pipeline switches a stored outcome depends on. A baseline recorded
/// under one signature is unusable under another (solver-tier toggles --
/// quick pair tests, incremental snapshots, snapshot sharing -- are
/// excluded: they are result-identical by construction).
struct PipelineSig {
  bool Refine = true;
  bool Cover = true;
  bool Kill = true;
  bool QuickTests = true;

  friend bool operator==(const PipelineSig &A, const PipelineSig &B) {
    return A.Refine == B.Refine && A.Cover == B.Cover && A.Kill == B.Kill &&
           A.QuickTests == B.QuickTests;
  }
};

/// A portable prior AnalysisResult, keyed by canonical fingerprints.
/// Duplicate fingerprints within one program collapse to the first
/// occurrence -- sound, since equal keys imply equal outcomes.
struct BaselineResult {
  PipelineSig Sig;
  std::map<std::string, PairOutcome> Pairs;
  std::map<std::string, KillGroupOutcome> KillGroups;
  /// Arrays accessed by the baseline program; used only to classify a
  /// fingerprint miss as resolved (known array) vs new.
  std::set<std::string> Arrays;

  /// Versioned binary serialization (magic, format version, checksum;
  /// map iteration is sorted, so bytes are deterministic).
  std::string serialize() const;
  /// Rejects wrong magic/version and checksum mismatches via \p Err.
  static bool deserialize(const std::string &Bytes, BaselineResult *Out,
                          std::string *Err);
  bool saveFile(const std::string &Path, std::string *Err) const;
  static bool loadFile(const std::string &Path, BaselineResult *Out,
                       std::string *Err);
};

//===----------------------------------------------------------------------===//
// Planner
//===----------------------------------------------------------------------===//

/// Per-run delta accounting, reported through stats/metrics/responses.
/// When Active, PairsReused + PairsResolved + PairsNew equals the number
/// of pair groups exactly.
struct DeltaMetrics {
  bool Active = false;
  uint64_t PairsReused = 0;
  uint64_t PairsResolved = 0;
  uint64_t PairsNew = 0;
  uint64_t PairsRemoved = 0;
  uint64_t KillGroupsReused = 0;
  uint64_t KillGroupsTotal = 0;
};

/// Matches the new program's fingerprints against a baseline and keeps
/// the classification tally. Not thread-safe: the engine drives it from
/// the coordinating thread only (fingerprinting itself is parallel).
class DeltaPlanner {
public:
  /// \p Baseline may be null (every pair classifies as new). A baseline
  /// whose pipeline signature differs from \p Sig is ignored entirely.
  DeltaPlanner(const BaselineResult *Baseline, const PipelineSig &Sig);

  /// True when a usable baseline is present.
  bool hasBaseline() const { return Baseline != nullptr; }

  /// Looks up a pair fingerprint; marks the key as matched for removed
  /// accounting. Null on miss.
  const PairOutcome *matchPair(const std::string &Key);

  /// Looks up a kill-group fingerprint. Null on miss.
  const KillGroupOutcome *matchKillGroup(const std::string &Key) const;

  /// True when a fingerprint miss for \p Array is an edit of known data
  /// (resolved) rather than new data.
  bool knownArray(const std::string &Array) const;

  /// Baseline pair fingerprints no current pair matched.
  uint64_t removedCount() const;

private:
  const BaselineResult *Baseline; ///< null when absent or sig-mismatched
  std::set<std::string> Matched;
};

//===----------------------------------------------------------------------===//
// Conversion helpers
//===----------------------------------------------------------------------===//

/// Portable form of one query answer; \p Dep may be null (absent result).
PortableDep portableDep(const deps::Dependence *Dep, uint8_t Kind,
                        uint8_t SrcRole, uint8_t DstRole);

/// Rebinds a stored answer to current accesses. Only meaningful when
/// \p P.Present; the caller resolves roles to accesses.
deps::Dependence materializeDep(const PortableDep &P, const ir::Access *Src,
                                const ir::Access *Dst);

//===----------------------------------------------------------------------===//
// Wire-format helpers (shared with ResultStore)
//===----------------------------------------------------------------------===//

/// The little-endian length-prefixed encoding BaselineResult persists with.
/// ResultStore reuses it so a pair outcome has exactly one byte form.
namespace detail {

/// FNV-1a over a byte string; the checksum every persisted artifact carries.
uint64_t checksum64(const std::string &Bytes);

void appendU32(std::string &Out, uint32_t V);
void appendU64(std::string &Out, uint64_t V);
void appendLenString(std::string &Out, const std::string &S);

/// Bounds-checked cursor over a serialized byte string. All take/uN calls
/// set Ok=false (and return zeros) past the end instead of reading wild.
struct ByteReader {
  const std::string &Bytes;
  std::size_t Pos = 0;
  bool Ok = true;

  explicit ByteReader(const std::string &B) : Bytes(B) {}

  bool take(void *Dst, std::size_t N) {
    if (!Ok || Pos + N > Bytes.size()) {
      Ok = false;
      return false;
    }
    std::memcpy(Dst, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }
  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int64_t i64();
  std::string lenString();
};

void appendPairOutcome(std::string &Out, const PairOutcome &P);
PairOutcome readPairOutcome(ByteReader &R);
void appendKillGroup(std::string &Out, const KillGroupOutcome &G);
KillGroupOutcome readKillGroup(ByteReader &R);

} // namespace detail

} // namespace engine
} // namespace omega

#endif // OMEGA_ENGINE_DELTAPLANNER_H
