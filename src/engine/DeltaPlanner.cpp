//===- engine/DeltaPlanner.cpp --------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "engine/DeltaPlanner.h"

#include "deps/Dependence.h"

#include <cstdio>
#include <cstring>

using namespace omega;
using namespace omega::engine;
using namespace omega::engine::detail;

//===----------------------------------------------------------------------===//
// Persistence (mirrors QueryCache's on-disk conventions)
//===----------------------------------------------------------------------===//

namespace omega {
namespace engine {
namespace detail {

/// FNV-1a, the same checksum the query-cache file uses.
uint64_t checksum64(const std::string &Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendLenString(std::string &Out, const std::string &S) {
  appendU64(Out, S.size());
  Out += S;
}

uint8_t ByteReader::u8() {
  uint8_t C = 0;
  take(&C, 1);
  return C;
}

uint32_t ByteReader::u32() {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I) {
    unsigned char C = 0;
    if (!take(&C, 1))
      return 0;
    V |= static_cast<uint32_t>(C) << (8 * I);
  }
  return V;
}

uint64_t ByteReader::u64() {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I) {
    unsigned char C = 0;
    if (!take(&C, 1))
      return 0;
    V |= static_cast<uint64_t>(C) << (8 * I);
  }
  return V;
}

int64_t ByteReader::i64() { return static_cast<int64_t>(u64()); }

std::string ByteReader::lenString() {
  uint64_t N = u64();
  if (!Ok || Pos + N > Bytes.size()) {
    Ok = false;
    return {};
  }
  std::string S = Bytes.substr(Pos, N);
  Pos += N;
  return S;
}

} // namespace detail
} // namespace engine
} // namespace omega

namespace {

const char BaselineMagic[4] = {'O', 'M', 'B', 'L'};
constexpr uint32_t BaselineFormatVersion = 1;

using Reader = detail::ByteReader;

void appendI64(std::string &Out, int64_t V) {
  appendU64(Out, static_cast<uint64_t>(V));
}

void appendRange(std::string &Out, const PortableRange &R) {
  Out.push_back(static_cast<char>((R.HasMin ? 1 : 0) | (R.HasMax ? 2 : 0) |
                                  (R.Empty ? 4 : 0)));
  appendI64(Out, R.Min);
  appendI64(Out, R.Max);
}

PortableRange readRange(Reader &R) {
  PortableRange Out;
  uint8_t Bits = R.u8();
  Out.HasMin = Bits & 1;
  Out.HasMax = Bits & 2;
  Out.Empty = Bits & 4;
  Out.Min = R.i64();
  Out.Max = R.i64();
  return Out;
}

void appendSplit(std::string &Out, const PortableSplit &S) {
  appendU32(Out, S.Level);
  Out.push_back(static_cast<char>((S.Dead ? 1 : 0) | (S.Refined ? 2 : 0)));
  Out.push_back(S.DeadReason);
  appendU64(Out, S.Dir.size());
  for (const PortableRange &R : S.Dir)
    appendRange(Out, R);
}

PortableSplit readSplit(Reader &R) {
  PortableSplit S;
  S.Level = R.u32();
  uint8_t Bits = R.u8();
  S.Dead = Bits & 1;
  S.Refined = Bits & 2;
  S.DeadReason = static_cast<char>(R.u8());
  uint64_t N = R.u64();
  for (uint64_t I = 0; R.Ok && I != N; ++I)
    S.Dir.push_back(readRange(R));
  return S;
}

void appendDep(std::string &Out, const PortableDep &D) {
  Out.push_back(static_cast<char>(D.Kind));
  Out.push_back(static_cast<char>(D.SrcRole));
  Out.push_back(static_cast<char>(D.DstRole));
  Out.push_back(static_cast<char>((D.Present ? 1 : 0) | (D.Covers ? 2 : 0) |
                                  (D.CoverLoopIndependent ? 4 : 0)));
  appendU64(Out, D.Splits.size());
  for (const PortableSplit &S : D.Splits)
    appendSplit(Out, S);
}

PortableDep readDep(Reader &R) {
  PortableDep D;
  D.Kind = R.u8();
  D.SrcRole = R.u8();
  D.DstRole = R.u8();
  uint8_t Bits = R.u8();
  D.Present = Bits & 1;
  D.Covers = Bits & 2;
  D.CoverLoopIndependent = Bits & 4;
  uint64_t N = R.u64();
  for (uint64_t I = 0; R.Ok && I != N; ++I)
    D.Splits.push_back(readSplit(R));
  return D;
}

} // namespace

namespace omega {
namespace engine {
namespace detail {

void appendPairOutcome(std::string &Out, const PairOutcome &P) {
  Out.push_back(static_cast<char>(
      (P.HasFlowRecord ? 1 : 0) | (P.RecHasFlow ? 2 : 0) |
      (P.RecUsedGeneralTest ? 4 : 0) | (P.RecSplitVectors ? 8 : 0)));
  appendU64(Out, P.Queries.size());
  for (const PortableDep &D : P.Queries)
    appendDep(Out, D);
}

PairOutcome readPairOutcome(Reader &R) {
  PairOutcome P;
  uint8_t Bits = R.u8();
  P.HasFlowRecord = Bits & 1;
  P.RecHasFlow = Bits & 2;
  P.RecUsedGeneralTest = Bits & 4;
  P.RecSplitVectors = Bits & 8;
  uint64_t N = R.u64();
  for (uint64_t I = 0; R.Ok && I != N; ++I)
    P.Queries.push_back(readDep(R));
  return P;
}

void appendKillGroup(std::string &Out, const KillGroupOutcome &G) {
  appendU64(Out, G.Records.size());
  for (const PortableKillRecord &KR : G.Records) {
    appendU32(Out, KR.VictimPos);
    appendU32(Out, KR.KillerPos);
    Out.push_back(static_cast<char>((KR.UsedOmega ? 1 : 0) |
                                    (KR.Killed ? 2 : 0)));
  }
  appendU64(Out, G.States.size());
  for (const KillGroupOutcome::DepState &S : G.States) {
    appendU32(Out, S.WritePos);
    appendU64(Out, S.Splits.size());
    for (const auto &[Dead, Reason] : S.Splits) {
      Out.push_back(Dead ? 1 : 0);
      Out.push_back(Reason);
    }
  }
}

KillGroupOutcome readKillGroup(Reader &R) {
  KillGroupOutcome G;
  uint64_t NR = R.u64();
  for (uint64_t I = 0; R.Ok && I != NR; ++I) {
    PortableKillRecord KR;
    KR.VictimPos = R.u32();
    KR.KillerPos = R.u32();
    uint8_t Bits = R.u8();
    KR.UsedOmega = Bits & 1;
    KR.Killed = Bits & 2;
    G.Records.push_back(KR);
  }
  uint64_t NS = R.u64();
  for (uint64_t I = 0; R.Ok && I != NS; ++I) {
    KillGroupOutcome::DepState S;
    S.WritePos = R.u32();
    uint64_t N = R.u64();
    for (uint64_t J = 0; R.Ok && J != N; ++J) {
      bool Dead = R.u8() != 0;
      char Reason = static_cast<char>(R.u8());
      S.Splits.emplace_back(Dead, Reason);
    }
    G.States.push_back(std::move(S));
  }
  return G;
}

} // namespace detail
} // namespace engine
} // namespace omega

std::string BaselineResult::serialize() const {
  std::string Payload;
  Payload.push_back(Sig.Refine ? 1 : 0);
  Payload.push_back(Sig.Cover ? 1 : 0);
  Payload.push_back(Sig.Kill ? 1 : 0);
  Payload.push_back(Sig.QuickTests ? 1 : 0);
  appendU64(Payload, Pairs.size());
  for (const auto &[Key, Outcome] : Pairs) {
    appendLenString(Payload, Key);
    appendPairOutcome(Payload, Outcome);
  }
  appendU64(Payload, KillGroups.size());
  for (const auto &[Key, Group] : KillGroups) {
    appendLenString(Payload, Key);
    appendKillGroup(Payload, Group);
  }
  appendU64(Payload, Arrays.size());
  for (const std::string &A : Arrays)
    appendLenString(Payload, A);

  std::string Out(BaselineMagic, sizeof(BaselineMagic));
  appendU32(Out, BaselineFormatVersion);
  appendU64(Out, checksum64(Payload));
  Out += Payload;
  return Out;
}

bool BaselineResult::deserialize(const std::string &Bytes, BaselineResult *Out,
                                 std::string *Err) {
  auto Reject = [&](const char *Why) {
    if (Err)
      *Err = Why;
    return false;
  };
  Reader R(Bytes);
  char Magic[4];
  if (!R.take(Magic, 4) || std::memcmp(Magic, BaselineMagic, 4) != 0)
    return Reject("not a baseline file (bad magic)");
  if (R.u32() != BaselineFormatVersion)
    return Reject("unsupported baseline format version");
  uint64_t Sum = R.u64();
  if (!R.Ok || checksum64(Bytes.substr(R.Pos)) != Sum)
    return Reject("baseline checksum mismatch");

  BaselineResult B;
  B.Sig.Refine = R.u8() != 0;
  B.Sig.Cover = R.u8() != 0;
  B.Sig.Kill = R.u8() != 0;
  B.Sig.QuickTests = R.u8() != 0;
  uint64_t NP = R.u64();
  for (uint64_t I = 0; R.Ok && I != NP; ++I) {
    std::string Key = R.lenString();
    B.Pairs.emplace(std::move(Key), readPairOutcome(R));
  }
  uint64_t NG = R.u64();
  for (uint64_t I = 0; R.Ok && I != NG; ++I) {
    std::string Key = R.lenString();
    B.KillGroups.emplace(std::move(Key), readKillGroup(R));
  }
  uint64_t NA = R.u64();
  for (uint64_t I = 0; R.Ok && I != NA; ++I)
    B.Arrays.insert(R.lenString());
  if (!R.Ok || R.Pos != Bytes.size())
    return Reject("baseline payload truncated or oversized");
  *Out = std::move(B);
  return true;
}

bool BaselineResult::saveFile(const std::string &Path,
                              std::string *Err) const {
  std::string Bytes = serialize();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path + " for writing";
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to " + Path;
  return Ok;
}

bool BaselineResult::loadFile(const std::string &Path, BaselineResult *Out,
                              std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::string Bytes;
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.append(Buf, N);
  std::fclose(F);
  return deserialize(Bytes, Out, Err);
}

//===----------------------------------------------------------------------===//
// Planner
//===----------------------------------------------------------------------===//

DeltaPlanner::DeltaPlanner(const BaselineResult *Baseline,
                           const PipelineSig &Sig)
    : Baseline(Baseline && Baseline->Sig == Sig ? Baseline : nullptr) {}

const PairOutcome *DeltaPlanner::matchPair(const std::string &Key) {
  if (!Baseline)
    return nullptr;
  auto It = Baseline->Pairs.find(Key);
  if (It == Baseline->Pairs.end())
    return nullptr;
  Matched.insert(Key);
  return &It->second;
}

const KillGroupOutcome *
DeltaPlanner::matchKillGroup(const std::string &Key) const {
  if (!Baseline)
    return nullptr;
  auto It = Baseline->KillGroups.find(Key);
  return It == Baseline->KillGroups.end() ? nullptr : &It->second;
}

bool DeltaPlanner::knownArray(const std::string &Array) const {
  return Baseline && Baseline->Arrays.count(Array) != 0;
}

uint64_t DeltaPlanner::removedCount() const {
  if (!Baseline)
    return 0;
  uint64_t Removed = 0;
  for (const auto &[Key, Outcome] : Baseline->Pairs) {
    (void)Outcome;
    if (!Matched.count(Key))
      ++Removed;
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Conversion
//===----------------------------------------------------------------------===//

PortableDep omega::engine::portableDep(const deps::Dependence *Dep,
                                       uint8_t Kind, uint8_t SrcRole,
                                       uint8_t DstRole) {
  PortableDep P;
  P.Kind = Kind;
  P.SrcRole = SrcRole;
  P.DstRole = DstRole;
  if (!Dep)
    return P;
  P.Present = true;
  P.Covers = Dep->Covers;
  P.CoverLoopIndependent = Dep->CoverLoopIndependent;
  for (const deps::DepSplit &S : Dep->Splits) {
    PortableSplit PS;
    PS.Level = S.Level;
    PS.Dead = S.Dead;
    PS.DeadReason = S.DeadReason;
    PS.Refined = S.Refined;
    for (const deps::DirectionElem &E : S.Dir) {
      PortableRange R;
      R.HasMin = E.Range.HasMin;
      R.HasMax = E.Range.HasMax;
      R.Min = E.Range.Min;
      R.Max = E.Range.Max;
      R.Empty = E.Range.Empty;
      PS.Dir.push_back(R);
    }
    P.Splits.push_back(std::move(PS));
  }
  return P;
}

deps::Dependence omega::engine::materializeDep(const PortableDep &P,
                                               const ir::Access *Src,
                                               const ir::Access *Dst) {
  deps::Dependence D;
  D.Src = Src;
  D.Dst = Dst;
  D.Kind = static_cast<deps::DepKind>(P.Kind);
  D.Covers = P.Covers;
  D.CoverLoopIndependent = P.CoverLoopIndependent;
  for (const PortableSplit &PS : P.Splits) {
    deps::DepSplit S;
    S.Level = PS.Level;
    S.Dead = PS.Dead;
    S.DeadReason = PS.DeadReason;
    S.Refined = PS.Refined;
    for (const PortableRange &R : PS.Dir) {
      deps::DirectionElem E;
      E.Range.HasMin = R.HasMin;
      E.Range.HasMax = R.HasMax;
      E.Range.Min = R.Min;
      E.Range.Max = R.Max;
      E.Range.Empty = R.Empty;
      S.Dir.push_back(E);
    }
    D.Splits.push_back(std::move(S));
  }
  return D;
}
