//===- deps/DepSpace.h - Variable layout for dependence problems ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DepSpace lays out the Omega-test variables for a dependence question
/// over one or more access *instances*: one iteration variable per
/// enclosing loop of each instance, one shared variable per symbolic
/// constant, and variables for uninterpreted terms (shared when the term
/// is loop-invariant, per-instance when it is parameterized by loop
/// variables -- Section 5 of the paper). It provides the constraint
/// builders every analysis is phrased with: iteration spaces, subscript
/// equality, and the lexicographic execution order A(i) << B(j).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_DEPS_DEPSPACE_H
#define OMEGA_DEPS_DEPSPACE_H

#include "ir/Sema.h"
#include "omega/Problem.h"

#include <map>
#include <vector>

namespace omega {
namespace deps {

class DepSpace {
public:
  /// Creates the layout for the given access instances. Two instances may
  /// reference the same Access (e.g. refinement compares two iterations of
  /// one write).
  DepSpace(const ir::AnalyzedProgram &AP,
           std::vector<const ir::Access *> Instances);

  const ir::AnalyzedProgram &program() const { return AP; }
  unsigned getNumInstances() const { return Insts.size(); }
  const ir::Access &access(unsigned Inst) const { return *Insts[Inst]; }

  /// An empty problem with this layout (iteration variables, symbolic
  /// constants and term variables all created).
  const Problem &base() const { return Base; }

  /// Iteration variable of instance \p Inst at loop depth \p Depth.
  VarId iterVar(unsigned Inst, unsigned Depth) const;
  /// The shared variable of a symbolic constant.
  VarId symConstVar(ir::SymId S) const;
  /// All shared symbolic-constant variables.
  std::vector<VarId> symConstVars() const;

  /// Adds Scale * Expr (an affine form of instance \p Inst) into \p Row.
  void accumulate(Constraint &Row, unsigned Inst, const ir::AffineExpr &E,
                  int64_t Scale) const;

  /// Appends the iteration-space constraints of instance \p Inst: loop
  /// bounds and stride constraints (strides add wildcards to \p P).
  void addIterationSpace(Problem &P, unsigned Inst) const;

  /// Appends subscript-equality constraints between two instances of
  /// references to the same array (A(i) =sub= B(j)).
  void addSubscriptsEqual(Problem &P, unsigned InstA, unsigned InstB) const;

  /// Number of loops common to two instances' accesses.
  unsigned numCommonLoops(unsigned InstA, unsigned InstB) const;

  /// Appends the constraints for "instance A executes before instance B,
  /// carried at exactly loop \p Level" (1-based). Level 0 means
  /// loop-independent: all common iteration variables equal; it is only
  /// meaningful when A is textually before B (the caller must check).
  void addPrecedesAtLevel(Problem &P, unsigned InstA, unsigned InstB,
                          unsigned Level) const;

  /// True when the loop-independent case of addPrecedesAtLevel applies.
  bool textuallyBefore(unsigned InstA, unsigned InstB) const {
    return ir::AnalyzedProgram::textuallyBefore(access(InstA),
                                                access(InstB));
  }

  /// All execution-order cases for A << B: one copy of \p P per carried
  /// level plus (when textually ordered) the loop-independent case.
  std::vector<Problem> precedesCases(const Problem &P, unsigned InstA,
                                     unsigned InstB) const;

  /// Creates distance variables Delta_k == iterB_k - iterA_k for the
  /// common loops of the two instances, appending defining equalities to
  /// \p P, and returns their VarIds (outermost first).
  std::vector<VarId> addDistanceVars(Problem &P, unsigned InstA,
                                     unsigned InstB) const;

  /// One uninterpreted-term variable of the space: \p Inst is the owning
  /// instance, or -1 for a shared (loop-invariant) term.
  struct TermVar {
    int Inst = -1;
    ir::SymId Sym = -1;
    VarId Var = -1;
  };
  /// Every term-symbol variable (instance-local and shared).
  std::vector<TermVar> termVars() const;

  /// One restraint vector (Section 2.1.2): a conjunction of sign
  /// constraints on the dependence distances that filters out the
  /// lexicographically negative solutions. MinAtLevel[k] is the forced
  /// minimum of Delta_k (INT64_MIN when unconstrained); typical vectors
  /// pin a prefix to 0 and one level to >= 0 or >= 1.
  struct RestraintVector {
    std::vector<int64_t> MinAtLevel;
    std::vector<int64_t> ExactAtLevel; // INT64_MIN when not pinned

    std::string toString() const;
  };

  /// Computes a small set of restraint vectors for the dependence between
  /// the two instances, as Section 2.1.2 prescribes: first try a single
  /// merged restraint (e.g. Delta_1 >= 0 suffices for coupled distances
  /// like Example 6); fall back to one restraint per carried level plus
  /// the loop-independent case. \p Pair must contain the dependence
  /// problem (iteration spaces and subscript equality, no ordering).
  std::vector<RestraintVector> computeRestraintVectors(const Problem &Pair,
                                                       unsigned InstA,
                                                       unsigned InstB) const;

  /// Appends the constraints of one restraint vector to \p P.
  void addRestraint(Problem &P, unsigned InstA, unsigned InstB,
                    const RestraintVector &R) const;

private:
  const ir::AnalyzedProgram &AP;
  std::vector<const ir::Access *> Insts;
  Problem Base;
  std::vector<std::vector<VarId>> IterVars;       // [Inst][Depth]
  std::map<ir::SymId, VarId> SharedVars;          // SymConst + invariant Term
  std::vector<std::map<ir::SymId, VarId>> InstTermVars; // per-instance Term

  VarId varForSymbol(unsigned Inst, ir::SymId S) const;
};

} // namespace deps
} // namespace omega

#endif // OMEGA_DEPS_DEPSPACE_H
