//===- deps/DependenceAnalysis.cpp ----------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/DependenceAnalysis.h"

#include "omega/Projection.h"
#include "omega/Satisfiability.h"

using namespace omega;
using namespace omega::deps;

Problem deps::buildPairProblem(const DepSpace &Space) {
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  Space.addIterationSpace(P, 1);
  Space.addSubscriptsEqual(P, 0, 1);
  return P;
}

std::optional<Dependence>
DependenceAnalysis::computeDependence(const ir::Access &Src,
                                      const ir::Access &Dst,
                                      DepKind Kind) const {
  DepSpace Space(AP, {&Src, &Dst});
  Problem Pair = buildPairProblem(Space);
  unsigned Common = Space.numCommonLoops(0, 1);

  Dependence Dep;
  Dep.Src = &Src;
  Dep.Dst = &Dst;
  Dep.Kind = Kind;

  auto summarize = [&](const Problem &Case) {
    // Distance ranges per common loop under this case's constraints.
    Problem WithDeltas = Case;
    std::vector<VarId> Deltas =
        Space.addDistanceVars(WithDeltas, 0, 1);
    DepSplit Split;
    for (VarId Delta : Deltas) {
      DirectionElem Elem;
      Elem.Range = computeVarRange(WithDeltas, Delta, Ctx);
      Split.Dir.push_back(Elem);
    }
    return Split;
  };

  for (unsigned Level = 1; Level <= Common; ++Level) {
    Problem Case = Pair;
    Space.addPrecedesAtLevel(Case, 0, 1, Level);
    if (!isSatisfiable(Case, SatOptions(), Ctx))
      continue;
    DepSplit Split = summarize(Case);
    Split.Level = Level;
    Dep.Splits.push_back(std::move(Split));
  }
  if (Space.textuallyBefore(0, 1)) {
    Problem Case = Pair;
    Space.addPrecedesAtLevel(Case, 0, 1, 0);
    if (isSatisfiable(Case, SatOptions(), Ctx)) {
      DepSplit Split = summarize(Case);
      Split.Level = 0;
      Dep.Splits.push_back(std::move(Split));
    }
  }

  if (Dep.Splits.empty())
    return std::nullopt;
  return Dep;
}

std::vector<Dependence>
DependenceAnalysis::computeDependences(DepKind Kind) const {
  std::vector<Dependence> Out;
  for (const ir::Access &Src : AP.Accesses) {
    bool SrcIsWrite = Kind == DepKind::Flow || Kind == DepKind::Output;
    if (Src.IsWrite != SrcIsWrite)
      continue;
    for (const ir::Access &Dst : AP.Accesses) {
      bool DstIsWrite = Kind == DepKind::Anti || Kind == DepKind::Output;
      if (Dst.IsWrite != DstIsWrite || Dst.Array != Src.Array)
        continue;
      if (&Src == &Dst && Kind != DepKind::Output)
        continue; // a reference cannot flow to itself except write/write
      if (std::optional<Dependence> Dep = computeDependence(Src, Dst, Kind))
        Out.push_back(std::move(*Dep));
    }
  }
  return Out;
}

std::vector<Dependence> DependenceAnalysis::computeAllDependences() const {
  std::vector<Dependence> Out = computeDependences(DepKind::Flow);
  std::vector<Dependence> Anti = computeDependences(DepKind::Anti);
  std::vector<Dependence> Output = computeDependences(DepKind::Output);
  Out.insert(Out.end(), std::make_move_iterator(Anti.begin()),
             std::make_move_iterator(Anti.end()));
  Out.insert(Out.end(), std::make_move_iterator(Output.begin()),
             std::make_move_iterator(Output.end()));
  return Out;
}
