//===- deps/DependenceAnalysis.cpp ----------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/DependenceAnalysis.h"

#include "deps/PairSolver.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

using namespace omega;
using namespace omega::deps;

Problem deps::buildPairProblem(const DepSpace &Space) {
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  Space.addIterationSpace(P, 1);
  Space.addSubscriptsEqual(P, 0, 1);
  return P;
}

std::optional<Dependence>
DependenceAnalysis::computeDependence(const ir::Access &Src,
                                      const ir::Access &Dst,
                                      DepKind Kind) const {
  PairSolver Solver(AP, Src, Dst, Ctx);
  return Solver.computeDependence(Src, Dst, Kind);
}

std::vector<Dependence>
DependenceAnalysis::computeDependences(DepKind Kind) const {
  std::vector<Dependence> Out;
  for (const ir::Access &Src : AP.Accesses) {
    bool SrcIsWrite = Kind == DepKind::Flow || Kind == DepKind::Output;
    if (Src.IsWrite != SrcIsWrite)
      continue;
    for (const ir::Access &Dst : AP.Accesses) {
      bool DstIsWrite = Kind == DepKind::Anti || Kind == DepKind::Output;
      if (Dst.IsWrite != DstIsWrite || Dst.Array != Src.Array)
        continue;
      if (&Src == &Dst && Kind != DepKind::Output)
        continue; // a reference cannot flow to itself except write/write
      if (std::optional<Dependence> Dep = computeDependence(Src, Dst, Kind))
        Out.push_back(std::move(*Dep));
    }
  }
  return Out;
}

std::vector<Dependence> DependenceAnalysis::computeAllDependences() const {
  // Enumerate the query triples in the legacy emission order (all flow,
  // then anti, then output), but solve them grouped by *unordered*
  // reference pair: the flow and anti questions about a read/write pair --
  // and the two directions plus all levels of each -- share one PairSolver,
  // so quick tests and the elimination snapshot are built once per pair
  // instead of once per query.
  struct Query {
    const ir::Access *Src;
    const ir::Access *Dst;
    DepKind Kind;
  };
  std::vector<Query> Queries;
  auto Enumerate = [&](DepKind Kind) {
    for (const ir::Access &Src : AP.Accesses) {
      bool SrcIsWrite = Kind == DepKind::Flow || Kind == DepKind::Output;
      if (Src.IsWrite != SrcIsWrite)
        continue;
      for (const ir::Access &Dst : AP.Accesses) {
        bool DstIsWrite = Kind == DepKind::Anti || Kind == DepKind::Output;
        if (Dst.IsWrite != DstIsWrite || Dst.Array != Src.Array)
          continue;
        if (&Src == &Dst && Kind != DepKind::Output)
          continue;
        Queries.push_back({&Src, &Dst, Kind});
      }
    }
  };
  Enumerate(DepKind::Flow);
  Enumerate(DepKind::Anti);
  Enumerate(DepKind::Output);

  std::map<std::pair<unsigned, unsigned>, std::unique_ptr<PairSolver>> Solvers;
  std::vector<Dependence> Out;
  for (const Query &Q : Queries) {
    auto Key = std::minmax(Q.Src->Id, Q.Dst->Id);
    std::unique_ptr<PairSolver> &Solver =
        Solvers[{Key.first, Key.second}];
    if (!Solver)
      Solver = std::make_unique<PairSolver>(AP, *Q.Src, *Q.Dst, Ctx);
    if (std::optional<Dependence> Dep =
            Solver->computeDependence(*Q.Src, *Q.Dst, Q.Kind))
      Out.push_back(std::move(*Dep));
  }
  return Out;
}
