//===- deps/Dependence.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/Dependence.h"

using namespace omega;
using namespace omega::deps;

const char *deps::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

std::string DirectionElem::toString() const {
  const IntRange &R = Range;
  if (R.Empty)
    return "!";
  if (isConstant())
    return std::to_string(R.Min);
  if (R.HasMin && R.HasMax)
    return std::to_string(R.Min) + ":" + std::to_string(R.Max);
  if (R.HasMin) {
    if (R.Min == 1)
      return "+";
    if (R.Min == 0)
      return "0+";
    if (R.Min > 1)
      return std::to_string(R.Min) + "+";
  }
  if (R.HasMax) {
    if (R.Max == -1)
      return "-";
    if (R.Max == 0)
      return "0-";
    if (R.Max < -1)
      return std::to_string(R.Max) + "-";
  }
  return "*";
}

namespace {

/// Can the two ranges be replaced by one contiguous interval equal to
/// their union? (Adjacent or overlapping intervals qualify.)
bool unionIsContiguous(const IntRange &A, const IntRange &B, IntRange &Out) {
  if (A.Empty || B.Empty)
    return false;
  // Order by lower end; an open lower end sorts first.
  const IntRange &Lo = (!A.HasMin || (B.HasMin && A.Min <= B.Min)) ? A : B;
  const IntRange &Hi = (&Lo == &A) ? B : A;
  // Contiguity: Lo reaches at least one below Hi's start.
  if (Lo.HasMax && Hi.HasMin && Lo.Max + 1 < Hi.Min)
    return false;
  Out.Empty = false;
  Out.HasMin = Lo.HasMin;
  Out.Min = Lo.Min;
  Out.HasMax = !(!Lo.HasMax || !Hi.HasMax);
  if (Out.HasMax)
    Out.Max = std::max(Lo.Max, Hi.Max);
  return true;
}

/// Attempts to merge B into A: allowed when all components but one are
/// identical and the differing one unions contiguously.
bool tryMerge(DepSplit &A, const DepSplit &B) {
  if (A.Dir.size() != B.Dir.size() || A.Dead != B.Dead ||
      A.DeadReason != B.DeadReason || A.Refined != B.Refined)
    return false;
  int Differing = -1;
  for (unsigned K = 0; K != A.Dir.size(); ++K) {
    const IntRange &X = A.Dir[K].Range;
    const IntRange &Y = B.Dir[K].Range;
    bool Same = X.HasMin == Y.HasMin && X.HasMax == Y.HasMax &&
                (!X.HasMin || X.Min == Y.Min) &&
                (!X.HasMax || X.Max == Y.Max);
    if (Same)
      continue;
    if (Differing >= 0)
      return false; // more than one differing component
    Differing = static_cast<int>(K);
  }
  if (Differing < 0)
    return true; // identical rows collapse
  IntRange Merged;
  if (!unionIsContiguous(A.Dir[Differing].Range, B.Dir[Differing].Range,
                         Merged))
    return false;
  A.Dir[Differing].Range = Merged;
  // Display level: 0 if the merged row spans the loop-independent case,
  // otherwise the outermost carrying loop.
  A.Level = (A.Level == 0 || B.Level == 0) ? 0 : std::min(A.Level, B.Level);
  return true;
}

} // namespace

std::vector<DepSplit> deps::compressSplits(std::vector<DepSplit> Splits) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != Splits.size() && !Changed; ++I)
      for (unsigned J = I + 1; J != Splits.size() && !Changed; ++J)
        if (tryMerge(Splits[I], Splits[J])) {
          Splits.erase(Splits.begin() + J);
          Changed = true;
        }
  }
  return Splits;
}

std::string DepSplit::dirToString() const {
  if (Dir.empty())
    return "";
  std::string Out = "(";
  for (unsigned I = 0; I != Dir.size(); ++I) {
    if (I)
      Out += ",";
    Out += Dir[I].toString();
  }
  return Out + ")";
}
