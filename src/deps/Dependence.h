//===- deps/Dependence.h - Dependence summaries ---------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data dependence summaries: kind, per-level direction/distance vectors
/// (in the paper's rendering: 0, 1, +, 0+, 0:1, *, ...), and status flags
/// accumulated by the Section 4 analyses (refined, covering, covered,
/// killed).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_DEPS_DEPENDENCE_H
#define OMEGA_DEPS_DEPENDENCE_H

#include "ir/Sema.h"
#include "omega/Projection.h"

#include <string>
#include <vector>

namespace omega {
namespace deps {

enum class DepKind : uint8_t { Flow, Anti, Output };

const char *depKindName(DepKind K);

/// The distance summary for one common loop of a dependence.
struct DirectionElem {
  IntRange Range;

  bool isConstant() const {
    return Range.HasMin && Range.HasMax && Range.Min == Range.Max;
  }
  /// Paper-style rendering: a constant distance prints as its value; small
  /// finite ranges as "lo:hi"; otherwise a sign summary (+, 0+, -, 0-, *).
  std::string toString() const;
};

/// One dependence split: either carried by a specific common loop or
/// loop-independent. This is the granularity at which the Section 4
/// analyses work (each split is conjunctive -- a natural restraint
/// vector).
struct DepSplit {
  unsigned Level = 0; ///< 1-based carrying loop; 0 == loop-independent
  std::vector<DirectionElem> Dir; ///< one entry per common loop
  bool Dead = false;     ///< eliminated by a Section 4 analysis
  char DeadReason = 0;   ///< 'k' killed, 'c' covered
  bool Refined = false;  ///< distances tightened by refinement

  std::string dirToString() const;
};

/// Compresses a split list into the paper's display form (Section 2.1.1):
/// two rows merge when they differ in exactly one component and that
/// component's ranges union into one contiguous interval -- so
/// {(+,1),(0,1)} becomes (0+,1), while {(+,+),(0,0)} stays apart (the
/// single vector (0+,0+) would falsely suggest (0,+) and (+,0)). Only rows
/// with matching liveness/flags merge. Intended for presentation; the
/// analyses keep the per-level splits.
std::vector<DepSplit> compressSplits(std::vector<DepSplit> Splits);

struct Dependence {
  const ir::Access *Src = nullptr;
  const ir::Access *Dst = nullptr;
  DepKind Kind = DepKind::Flow;
  std::vector<DepSplit> Splits;
  bool Covers = false; ///< Src covers Dst ([C] in Figure 3)
  bool CoverLoopIndependent = false; ///< the cover needs no carried source

  bool allDead() const {
    for (const DepSplit &S : Splits)
      if (!S.Dead)
        return false;
    return true;
  }
  bool anyRefined() const {
    for (const DepSplit &S : Splits)
      if (S.Refined)
        return true;
    return false;
  }
};

} // namespace deps
} // namespace omega

#endif // OMEGA_DEPS_DEPENDENCE_H
