//===- deps/PairSolver.cpp - Incremental per-pair dependence solving ------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/PairSolver.h"

#include "deps/DependenceAnalysis.h"
#include "obs/Trace.h"
#include "omega/Projection.h"
#include "omega/QueryCache.h"
#include "omega/Satisfiability.h"
#include "support/MathUtils.h"

#include <limits>

using namespace omega;
using namespace omega::deps;

PairSolver::PairSolver(const ir::AnalyzedProgram &AP, const ir::Access &A,
                       const ir::Access &B, OmegaContext &Ctx)
    : Space(AP, {&A, &B}), Ctx(Ctx) {}

const Problem &PairSolver::pairProblem() {
  if (!Pair)
    Pair = buildPairProblem(Space);
  return *Pair;
}

void PairSolver::ensureSnapshot() {
  if (Snap)
    return;
  // Variables any ordering or distance row may mention: the iteration
  // variables of the common loops, on both sides. Everything else --
  // deeper iteration variables, symbolic constants, term variables, stride
  // wildcards -- is private to the shared system and eliminable.
  std::vector<bool> Keep(pairProblem().getNumVars(), false);
  unsigned Common = Space.numCommonLoops(0, 1);
  for (unsigned D = 0; D != Common; ++D) {
    Keep[Space.iterVar(0, D)] = true;
    Keep[Space.iterVar(1, D)] = true;
  }
  // With a cache and sharing on, adopt a previously built snapshot for the
  // exact same (system, keep mask) -- typically left by an earlier request
  // over the same program in the serving stack. A snapshot is a
  // deterministic function of its key, so adoption is result-identical to
  // rebuilding; only counters and wall time change.
  if (Ctx.Cache && Ctx.SnapshotSharing) {
    std::string Key = snapshotCacheKey(*Pair, Keep);
    if (std::optional<EliminationSnapshot> Cached =
            Ctx.Cache->lookupSnapshot(Key, &Ctx.Stats)) {
      Snap.emplace(std::move(*Cached));
      return;
    }
    Snap.emplace(*Pair, Keep, Ctx);
    Ctx.Cache->storeSnapshot(Key, *Snap, &Ctx.Stats);
    return;
  }
  Snap.emplace(*Pair, Keep, Ctx);
}

//===----------------------------------------------------------------------===//
// Quick tests (ZIV / GCD / single-subscript bounds)
//===----------------------------------------------------------------------===//

namespace {

/// Per-variable interval data for the bounds test: the constant part of a
/// loop's bound box. The true iteration range is a subset of
/// [max(constant lowers), min(constant uppers)] -- max/min bound semantics
/// plus strides only ever shrink the set -- so excluding zero from the
/// subscript row's interval image is sound for any refinement.
struct VarBox {
  bool IsIter = false;
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
  bool ExactBox = false; ///< all bound entries constant, stride 1
};

} // namespace

void PairSolver::ensureQuickTests() {
  if (QuickDone)
    return;
  QuickDone = true;
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::QuickTest,
                       static_cast<uint32_t>(Space.base().getNumVars()), 0);

  // The subscript-equality system alone (no iteration-space rows): every
  // quick test reasons about these equalities over the loops' bound boxes.
  Problem Sub = Space.base().cloneLayout();
  Space.addSubscriptsEqual(Sub, 0, 1);

  std::vector<VarBox> Box(Sub.getNumVars());
  bool AllBoxesExactNonEmpty = true;
  for (unsigned Inst = 0; Inst != 2; ++Inst) {
    const ir::Access &A = Space.access(Inst);
    for (unsigned D = 0; D != A.Loops.size(); ++D) {
      const ir::LoopInfo &L = *A.Loops[D];
      VarBox &B = Box[Space.iterVar(Inst, D)];
      B.IsIter = true;
      bool AllConst = !L.Lower.empty() && !L.Upper.empty() && L.Stride == 1;
      for (const ir::AffineExpr &E : L.Lower) {
        if (!E.isConstant()) {
          AllConst = false;
          continue;
        }
        int64_t C = E.getConstant();
        if (!B.HasLo || C > B.Lo)
          B.Lo = C;
        B.HasLo = true;
      }
      for (const ir::AffineExpr &E : L.Upper) {
        if (!E.isConstant()) {
          AllConst = false;
          continue;
        }
        int64_t C = E.getConstant();
        if (!B.HasHi || C < B.Hi)
          B.Hi = C;
        B.HasHi = true;
      }
      B.ExactBox = AllConst && B.HasLo && B.HasHi && B.Lo <= B.Hi;
      if (!B.ExactBox)
        AllBoxesExactNonEmpty = false;
    }
  }

  // Classify each subscript-difference row. A row that no test cracks is
  // just skipped; the first independent row decides the pair.
  bool AllRowsIdenticallyZero = true;
  unsigned NumVars = Sub.getNumVars();
  for (const Constraint &Row : Sub.constraints()) {
    int64_t K = Row.getConstant();
    bool AnyVar = false, OnlyIter = true;
    int64_t G = 0;
    // Interval image of the row over the bound boxes, in __int128 so no
    // saturation bookkeeping is needed (|coeff * bound| <= 2^126 and row
    // widths are tiny).
    __int128 SumLo = K, SumHi = K;
    bool LoInf = false, HiInf = false;
    for (VarId V = 0; V != static_cast<VarId>(NumVars); ++V) {
      int64_t A = Row.getCoeff(V);
      if (A == 0)
        continue;
      AnyVar = true;
      const VarBox &B = Box[V];
      if (!B.IsIter) {
        OnlyIter = false;
        break;
      }
      G = gcd64(G, A);
      __int128 TermLo, TermHi;
      bool TermLoInf, TermHiInf;
      if (A > 0) {
        TermLo = static_cast<__int128>(A) * B.Lo;
        TermHi = static_cast<__int128>(A) * B.Hi;
        TermLoInf = !B.HasLo;
        TermHiInf = !B.HasHi;
      } else {
        TermLo = static_cast<__int128>(A) * B.Hi;
        TermHi = static_cast<__int128>(A) * B.Lo;
        TermLoInf = !B.HasHi;
        TermHiInf = !B.HasLo;
      }
      SumLo += TermLo;
      SumHi += TermHi;
      LoInf |= TermLoInf;
      HiInf |= TermHiInf;
    }

    if (!AnyVar) {
      if (K != 0) {
        // ZIV: a constant subscript difference that is not zero.
        Verdict = QuickVerdict::Independent;
        Class = QuickClass::ZIV;
        return;
      }
      continue; // identically-zero row: trivially satisfied
    }
    AllRowsIdenticallyZero = false;
    if (!OnlyIter)
      continue; // symbolic constants / terms involved: no quick test
    if (K % G != 0) {
      // GCD: the coefficient gcd divides every integer combination of the
      // iteration variables but not the constant -- over *any* subset of
      // Z^n there is no solution.
      Verdict = QuickVerdict::Independent;
      Class = QuickClass::GCD;
      return;
    }
    if ((!LoInf && SumLo > 0) || (!HiInf && SumHi < 0)) {
      // Bounds: zero lies outside the row's interval image.
      Verdict = QuickVerdict::Independent;
      Class = QuickClass::Bounds;
      return;
    }
  }

  // Trivially dependent (narrow by design): no common loop, subscripts
  // identically equal, and every loop of both instances a non-empty
  // constant box -- each instance's space is non-empty and unconstrained by
  // the other, so the pair depends iff the source is textually first,
  // which is exactly what the from-scratch path concludes.
  if (AllRowsIdenticallyZero && Space.numCommonLoops(0, 1) == 0 &&
      AllBoxesExactNonEmpty)
    Verdict = QuickVerdict::TriviallyDependent;
}

//===----------------------------------------------------------------------===//
// Query entry point
//===----------------------------------------------------------------------===//

std::optional<Dependence> PairSolver::computeDependence(const ir::Access &Src,
                                                        const ir::Access &Dst,
                                                        DepKind Kind) {
  // Map the ordered query onto the solver's instances. Self-pairs always
  // use (0, 1): both instances reference the same access, so either
  // assignment produces the same (symmetric) problem.
  unsigned SI, DI;
  if (&Src == &Dst) {
    SI = 0;
    DI = 1;
  } else {
    SI = (&Src == &Space.access(0)) ? 0 : 1;
    DI = 1 - SI;
    assert(&Dst == &Space.access(DI) && "query about a different pair");
  }

  if (Ctx.PairQuickTests) {
    ensureQuickTests();
    if (Verdict == QuickVerdict::Independent) {
      switch (Class) {
      case QuickClass::ZIV:
        ++Ctx.Stats.QuickTestZIV;
        break;
      case QuickClass::GCD:
        ++Ctx.Stats.QuickTestGCD;
        break;
      case QuickClass::Bounds:
        ++Ctx.Stats.QuickTestBounds;
        break;
      case QuickClass::None:
        assert(false && "independent verdict without a class");
        break;
      }
      ++Ctx.Stats.QuickTestDecided;
      if (Ctx.Trace)
        Ctx.Trace->decision(Class == QuickClass::ZIV
                                ? "quick-test (ziv): independent"
                                : Class == QuickClass::GCD
                                      ? "quick-test (gcd): independent"
                                      : "quick-test (bounds): independent");
      return std::nullopt;
    }
    if (Verdict == QuickVerdict::TriviallyDependent) {
      ++Ctx.Stats.QuickTestTrivialDep;
      ++Ctx.Stats.QuickTestDecided;
      if (!Space.textuallyBefore(SI, DI)) {
        if (Ctx.Trace)
          Ctx.Trace->decision("quick-test (trivial): not textually ordered");
        return std::nullopt;
      }
      if (Ctx.Trace)
        Ctx.Trace->decision("quick-test (trivial): loop-independent dep");
      Dependence Dep;
      Dep.Src = &Src;
      Dep.Dst = &Dst;
      Dep.Kind = Kind;
      DepSplit Split;
      Split.Level = 0; // no common loops => no distance vars, empty Dir
      Dep.Splits.push_back(std::move(Split));
      return Dep;
    }
  }

  return solveOrdered(SI, DI, Src, Dst, Kind);
}

std::optional<Dependence> PairSolver::solveOrdered(unsigned SI, unsigned DI,
                                                   const ir::Access &Src,
                                                   const ir::Access &Dst,
                                                   DepKind Kind) {
  unsigned Common = Space.numCommonLoops(SI, DI);
  bool UseSnap = Ctx.IncrementalSnapshots;
  if (UseSnap)
    ensureSnapshot();

  Dependence Dep;
  Dep.Src = &Src;
  Dep.Dst = &Dst;
  Dep.Kind = Kind;

  auto summarize = [&](const Problem &Case) {
    Problem WithDeltas = Case;
    std::vector<VarId> Deltas = Space.addDistanceVars(WithDeltas, SI, DI);
    DepSplit Split;
    for (VarId Delta : Deltas) {
      DirectionElem Elem;
      Elem.Range = computeVarRange(WithDeltas, Delta, Ctx);
      Split.Dir.push_back(Elem);
    }
    return Split;
  };

  // One (kind, level) case: either a replay of the ordering rows on a copy
  // of the snapshot's reduced system, or the from-scratch pair problem.
  auto solveCase = [&](unsigned Level) -> std::optional<DepSplit> {
    if (UseSnap) {
      if (Snap->state() == EliminationSnapshot::State::ProvedUnsat) {
        // The shared system is already unsatisfiable; adding ordering rows
        // cannot revive it. The snapshot answers the case outright.
        ++Ctx.Stats.SnapshotReuses;
        return std::nullopt;
      }
      if (Snap->state() == EliminationSnapshot::State::Ready) {
        Problem Case = Snap->reduced();
        Space.addPrecedesAtLevel(Case, SI, DI, Level);
        if (Snap->deltasCompatible(Case)) {
          ++Ctx.Stats.SnapshotReuses;
          if (!isSatisfiable(Case, SatOptions(), Ctx))
            return std::nullopt;
          // The reduced system decides satisfiability exactly (it is
          // sat-equivalent over the kept variables and the procedure is
          // complete), but distance summaries read bounds off projected
          // pieces, which is form-sensitive: residual stride wildcards in
          // the reduced rows can hide bounds the scratch form exposes.
          // Summarize from the scratch system so --no-incremental stays
          // result-identical.
          Problem Scratch = pairProblem();
          Space.addPrecedesAtLevel(Scratch, SI, DI, Level);
          return summarize(Scratch);
        }
      }
      // Saturated snapshot or a delta over an eliminated column: this case
      // must not trust the reduced system.
      ++Ctx.Stats.SnapshotFallbacks;
    }
    Problem Case = pairProblem();
    Space.addPrecedesAtLevel(Case, SI, DI, Level);
    if (!isSatisfiable(Case, SatOptions(), Ctx))
      return std::nullopt;
    return summarize(Case);
  };

  for (unsigned Level = 1; Level <= Common; ++Level) {
    if (std::optional<DepSplit> Split = solveCase(Level)) {
      Split->Level = Level;
      Dep.Splits.push_back(std::move(*Split));
    }
  }
  if (Space.textuallyBefore(SI, DI)) {
    if (std::optional<DepSplit> Split = solveCase(0)) {
      Split->Level = 0;
      Dep.Splits.push_back(std::move(*Split));
    }
  }

  if (Dep.Splits.empty())
    return std::nullopt;
  return Dep;
}
