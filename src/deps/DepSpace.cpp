//===- deps/DepSpace.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/DepSpace.h"

#include "omega/Satisfiability.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace omega;
using namespace omega::deps;
using omega::ir::AffineExpr;
using omega::ir::SymId;
using omega::ir::SymKind;

DepSpace::DepSpace(const ir::AnalyzedProgram &AP,
                   std::vector<const ir::Access *> Instances)
    : AP(AP), Insts(std::move(Instances)) {
  InstTermVars.resize(Insts.size());

  // Gather every symbol referenced by any instance (subscripts and the
  // bounds of enclosing loops).
  auto collectFromExpr = [&](const AffineExpr &E, std::set<SymId> &Used) {
    for (const auto &[Sym, Coeff] : E.terms()) {
      (void)Coeff;
      Used.insert(Sym);
    }
  };

  std::vector<std::set<SymId>> UsedByInst(Insts.size());
  for (unsigned I = 0; I != Insts.size(); ++I) {
    for (const AffineExpr &Sub : Insts[I]->Subscripts)
      collectFromExpr(Sub, UsedByInst[I]);
    for (const ir::LoopInfo *L : Insts[I]->Loops) {
      for (const AffineExpr &B : L->Lower)
        collectFromExpr(B, UsedByInst[I]);
      for (const AffineExpr &B : L->Upper)
        collectFromExpr(B, UsedByInst[I]);
    }
  }

  // Iteration variables: one per instance per loop depth, named after the
  // source variable with an instance suffix when there are 2+ instances.
  IterVars.resize(Insts.size());
  for (unsigned I = 0; I != Insts.size(); ++I) {
    for (unsigned D = 0; D != Insts[I]->Loops.size(); ++D) {
      std::string Name = Insts[I]->Loops[D]->SourceVar;
      if (Insts.size() > 1)
        Name += "#" + std::to_string(I + 1);
      IterVars[I].push_back(Base.addVar(std::move(Name)));
    }
  }

  // Shared variables for symbolic constants and loop-invariant terms;
  // per-instance variables for loop-parameterized terms and for terms
  // reading mutable state (a scalar or index array that the program
  // writes has a different value at each instance).
  std::set<std::string> WrittenArrays;
  for (const ir::Access &A : AP.Accesses)
    if (A.IsWrite)
      WrittenArrays.insert(A.Array);
  for (unsigned I = 0; I != Insts.size(); ++I) {
    for (SymId S : UsedByInst[I]) {
      const ir::SymbolInfo &Info = AP.Symbols.info(S);
      if (Info.Kind == SymKind::LoopIter)
        continue; // mapped through IterVars
      bool ReadsMutableState =
          Info.IsIndexArrayRead && WrittenArrays.count(Info.IndexArray);
      bool Shared = Info.Kind == SymKind::SymConst ||
                    (Info.LoopParams.empty() && !ReadsMutableState);
      if (Shared) {
        if (!SharedVars.count(S))
          SharedVars[S] = Base.addVar(Info.Kind == SymKind::SymConst
                                          ? Info.Name
                                          : "<" + Info.SourceText + ">");
      } else if (!InstTermVars[I].count(S)) {
        InstTermVars[I][S] = Base.addVar(
            "<" + Info.SourceText + ">#" + std::to_string(I + 1));
      }
    }
  }
}

VarId DepSpace::iterVar(unsigned Inst, unsigned Depth) const {
  assert(Inst < IterVars.size() && Depth < IterVars[Inst].size());
  return IterVars[Inst][Depth];
}

VarId DepSpace::symConstVar(SymId S) const {
  auto It = SharedVars.find(S);
  assert(It != SharedVars.end() && "symbol has no shared variable");
  return It->second;
}

std::vector<VarId> DepSpace::symConstVars() const {
  std::vector<VarId> Out;
  for (const auto &[Sym, Var] : SharedVars)
    if (AP.Symbols.info(Sym).Kind == SymKind::SymConst)
      Out.push_back(Var);
  return Out;
}

VarId DepSpace::varForSymbol(unsigned Inst, SymId S) const {
  const ir::SymbolInfo &Info = AP.Symbols.info(S);
  if (Info.Kind == SymKind::LoopIter) {
    // Find the loop with this iteration symbol among the instance's loops.
    const std::vector<const ir::LoopInfo *> &Loops = Insts[Inst]->Loops;
    for (unsigned D = 0; D != Loops.size(); ++D)
      if (Loops[D]->IterSym == S)
        return IterVars[Inst][D];
    assert(false && "iteration symbol not among the instance's loops");
    return -1;
  }
  auto Shared = SharedVars.find(S);
  if (Shared != SharedVars.end())
    return Shared->second;
  auto It = InstTermVars[Inst].find(S);
  assert(It != InstTermVars[Inst].end() && "unmapped symbol");
  return It->second;
}

void DepSpace::accumulate(Constraint &Row, unsigned Inst, const AffineExpr &E,
                          int64_t Scale) const {
  for (const auto &[Sym, Coeff] : E.terms())
    Row.addToCoeff(varForSymbol(Inst, Sym), checkedMul(Coeff, Scale));
  Row.addToConstant(checkedMul(E.getConstant(), Scale));
}

void DepSpace::addIterationSpace(Problem &P, unsigned Inst) const {
  const ir::Access &A = access(Inst);
  for (unsigned D = 0; D != A.Loops.size(); ++D) {
    const ir::LoopInfo &L = *A.Loops[D];
    VarId Iter = iterVar(Inst, D);
    for (const AffineExpr &B : L.Lower) {
      // Iter - B >= 0.
      Constraint &Row = P.addRow(ConstraintKind::GEQ);
      Row.setCoeff(Iter, 1);
      accumulate(Row, Inst, B, -1);
    }
    for (const AffineExpr &B : L.Upper) {
      // B - Iter >= 0.
      Constraint &Row = P.addRow(ConstraintKind::GEQ);
      Row.setCoeff(Iter, -1);
      accumulate(Row, Inst, B, 1);
    }
    if (L.Stride != 1) {
      // Iter == Lower[0] + Stride * q, q >= 0.
      assert(L.Lower.size() == 1 && "stride requires a single lower bound");
      VarId Q = P.addWildcard();
      Constraint &Eq = P.addRow(ConstraintKind::EQ);
      Eq.setCoeff(Iter, 1);
      accumulate(Eq, Inst, L.Lower.front(), -1);
      Eq.setCoeff(Q, -L.Stride);
      Constraint &Ge = P.addRow(ConstraintKind::GEQ);
      Ge.setCoeff(Q, 1);
    }
  }
}

void DepSpace::addSubscriptsEqual(Problem &P, unsigned InstA,
                                  unsigned InstB) const {
  const ir::Access &A = access(InstA);
  const ir::Access &B = access(InstB);
  assert(A.Array == B.Array && "subscript equality across arrays");
  // Mismatched ranks (linearized vs. not) are compared on the common
  // prefix, conservatively.
  unsigned Dims = std::min(A.Subscripts.size(), B.Subscripts.size());
  for (unsigned D = 0; D != Dims; ++D) {
    Constraint &Row = P.addRow(ConstraintKind::EQ);
    accumulate(Row, InstA, A.Subscripts[D], 1);
    accumulate(Row, InstB, B.Subscripts[D], -1);
  }
}

unsigned DepSpace::numCommonLoops(unsigned InstA, unsigned InstB) const {
  return ir::AnalyzedProgram::numCommonLoops(access(InstA), access(InstB));
}

void DepSpace::addPrecedesAtLevel(Problem &P, unsigned InstA, unsigned InstB,
                                  unsigned Level) const {
  unsigned Common = numCommonLoops(InstA, InstB);
  assert(Level <= Common && "carried level beyond common nesting");
  unsigned EqualPrefix = Level == 0 ? Common : Level - 1;
  for (unsigned D = 0; D != EqualPrefix; ++D) {
    Constraint &Row = P.addRow(ConstraintKind::EQ);
    Row.setCoeff(iterVar(InstA, D), 1);
    Row.setCoeff(iterVar(InstB, D), -1);
  }
  if (Level != 0) {
    // iterB - iterA >= 1 at the carrying level.
    Constraint &Row = P.addRow(ConstraintKind::GEQ);
    Row.setCoeff(iterVar(InstB, Level - 1), 1);
    Row.setCoeff(iterVar(InstA, Level - 1), -1);
    Row.setConstant(-1);
  }
}

std::vector<Problem> DepSpace::precedesCases(const Problem &P, unsigned InstA,
                                             unsigned InstB) const {
  std::vector<Problem> Cases;
  unsigned Common = numCommonLoops(InstA, InstB);
  for (unsigned Level = 1; Level <= Common; ++Level) {
    Problem Case = P;
    addPrecedesAtLevel(Case, InstA, InstB, Level);
    Cases.push_back(std::move(Case));
  }
  if (textuallyBefore(InstA, InstB)) {
    Problem Case = P;
    addPrecedesAtLevel(Case, InstA, InstB, 0);
    Cases.push_back(std::move(Case));
  }
  return Cases;
}

std::vector<DepSpace::TermVar> DepSpace::termVars() const {
  std::vector<TermVar> Out;
  for (const auto &[Sym, Var] : SharedVars)
    if (AP.Symbols.info(Sym).Kind == ir::SymKind::Term)
      Out.push_back(TermVar{-1, Sym, Var});
  for (unsigned I = 0; I != InstTermVars.size(); ++I)
    for (const auto &[Sym, Var] : InstTermVars[I])
      Out.push_back(TermVar{static_cast<int>(I), Sym, Var});
  return Out;
}

std::string DepSpace::RestraintVector::toString() const {
  std::string Out = "(";
  for (unsigned K = 0; K != MinAtLevel.size(); ++K) {
    if (K)
      Out += ",";
    if (ExactAtLevel[K] != INT64_MIN)
      Out += std::to_string(ExactAtLevel[K]);
    else if (MinAtLevel[K] == INT64_MIN)
      Out += "*";
    else if (MinAtLevel[K] == 0)
      Out += "0+";
    else if (MinAtLevel[K] == 1)
      Out += "+";
    else
      Out += std::to_string(MinAtLevel[K]) + "+";
  }
  return Out + ")";
}

void DepSpace::addRestraint(Problem &P, unsigned InstA, unsigned InstB,
                            const RestraintVector &R) const {
  for (unsigned K = 0; K != R.MinAtLevel.size(); ++K) {
    if (R.ExactAtLevel[K] != INT64_MIN) {
      Constraint &Row = P.addRow(ConstraintKind::EQ);
      Row.setCoeff(iterVar(InstB, K), 1);
      Row.setCoeff(iterVar(InstA, K), -1);
      Row.setConstant(-R.ExactAtLevel[K]);
    } else if (R.MinAtLevel[K] != INT64_MIN) {
      Constraint &Row = P.addRow(ConstraintKind::GEQ);
      Row.setCoeff(iterVar(InstB, K), 1);
      Row.setCoeff(iterVar(InstA, K), -1);
      Row.setConstant(-R.MinAtLevel[K]);
    }
  }
}

std::vector<DepSpace::RestraintVector>
DepSpace::computeRestraintVectors(const Problem &Pair, unsigned InstA,
                                  unsigned InstB) const {
  unsigned Common = numCommonLoops(InstA, InstB);
  std::vector<RestraintVector> Out;
  if (Common == 0) {
    if (textuallyBefore(InstA, InstB))
      Out.push_back(RestraintVector{});
    return Out;
  }

  auto distanceRow = [&](Problem &P, unsigned K, int64_t Constant,
                         ConstraintKind Kind) {
    Constraint &Row = P.addRow(Kind);
    Row.setCoeff(iterVar(InstB, K), 1);
    Row.setCoeff(iterVar(InstA, K), -1);
    Row.setConstant(Constant);
  };

  // First try the merged restraint Delta_1 >= 0 (Section 2.1.2's cheap
  // case, sufficient for coupled distances like Example 6): valid when it
  // already excludes every lexicographically negative solution.
  {
    bool Valid = true;
    for (unsigned Neg = 1; Neg <= Common && Valid; ++Neg) {
      Problem Test = Pair;
      distanceRow(Test, 0, 0, ConstraintKind::GEQ); // Delta_1 >= 0
      for (unsigned K = 0; K + 1 < Neg; ++K)
        distanceRow(Test, K, 0, ConstraintKind::EQ); // prefix zero
      distanceRow(Test, Neg - 1, -1, ConstraintKind::GEQ);
      // ... with the orientation flipped: Delta_Neg <= -1.
      Constraint &Row = Test.constraints().back();
      Row.negateForm();
      Row.setConstant(-1);
      Valid = !isSatisfiable(std::move(Test));
    }
    if (Valid) {
      RestraintVector R;
      R.MinAtLevel.assign(Common, INT64_MIN);
      R.ExactAtLevel.assign(Common, INT64_MIN);
      R.MinAtLevel[0] = 0;
      Out.push_back(std::move(R));
      return Out;
    }
  }

  // Fall back: one restraint per feasible carried level, plus the
  // loop-independent case when the endpoints are textually ordered.
  for (unsigned Level = 1; Level <= Common; ++Level) {
    Problem Test = Pair;
    RestraintVector R;
    R.MinAtLevel.assign(Common, INT64_MIN);
    R.ExactAtLevel.assign(Common, INT64_MIN);
    for (unsigned K = 0; K + 1 < Level; ++K)
      R.ExactAtLevel[K] = 0;
    R.MinAtLevel[Level - 1] = 1;
    addRestraint(Test, InstA, InstB, R);
    if (isSatisfiable(std::move(Test)))
      Out.push_back(std::move(R));
  }
  if (textuallyBefore(InstA, InstB)) {
    Problem Test = Pair;
    RestraintVector R;
    R.MinAtLevel.assign(Common, INT64_MIN);
    R.ExactAtLevel.assign(Common, 0);
    addRestraint(Test, InstA, InstB, R);
    if (isSatisfiable(std::move(Test)))
      Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<VarId> DepSpace::addDistanceVars(Problem &P, unsigned InstA,
                                             unsigned InstB) const {
  std::vector<VarId> Deltas;
  unsigned Common = numCommonLoops(InstA, InstB);
  for (unsigned D = 0; D != Common; ++D) {
    VarId Delta =
        P.addVar("d" + std::to_string(D + 1), /*Protected=*/true);
    Constraint &Row = P.addRow(ConstraintKind::EQ);
    Row.setCoeff(Delta, -1);
    Row.setCoeff(iterVar(InstB, D), 1);
    Row.setCoeff(iterVar(InstA, D), -1);
    Deltas.push_back(Delta);
  }
  return Deltas;
}
