//===- deps/PairSolver.h - Incremental per-pair dependence solving --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A PairSolver owns every dependence question about one (unordered) pair
/// of array references. The flow/anti/output x per-carried-level queries
/// the analysis asks about a pair all share the iteration spaces and the
/// subscript-equality system and differ only in a handful of ordering rows
/// over the common loop variables, so the solver:
///
///  1. runs the classic quick tests once (ZIV, GCD, single-subscript
///     bounds) -- a sound pre-filter that answers *every* query of a
///     provably independent or trivially dependent pair with no Omega call
///     at all (per-class counters feed the Figure-6-style profile);
///  2. otherwise builds the shared pair problem once, reduces it once into
///     an EliminationSnapshot (omega/Snapshot.h), and answers each (kind,
///     level) query by replaying only that query's ordering rows on a copy
///     of the snapshot, falling back to the from-scratch path whenever a
///     replay would touch an eliminated column (or the snapshot saturated).
///
/// Both tiers are result-identical to DependenceAnalysis::computeDependence
/// by construction (PairSolverDifferentialTest pins this down over the
/// corpus and the random-program generator); the OmegaContext toggles
/// PairQuickTests / IncrementalSnapshots ablate each tier independently.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_DEPS_PAIRSOLVER_H
#define OMEGA_DEPS_PAIRSOLVER_H

#include "deps/DepSpace.h"
#include "deps/Dependence.h"
#include "omega/Snapshot.h"

#include <optional>

namespace omega {
namespace deps {

class PairSolver {
public:
  /// Creates the solver for the reference pair (\p A, \p B); \p A becomes
  /// instance 0 of the shared DepSpace. Self-pairs pass the same access
  /// twice. Everything is built lazily: a pair the quick tests dismiss
  /// never constructs an Omega problem.
  PairSolver(const ir::AnalyzedProgram &AP, const ir::Access &A,
             const ir::Access &B,
             OmegaContext &Ctx = OmegaContext::current());

  /// The dependence of kind \p Kind from \p Src to \p Dst, exactly as
  /// DependenceAnalysis::computeDependence reports it. \p Src and \p Dst
  /// must be the two accesses this solver was built for (in either order).
  std::optional<Dependence> computeDependence(const ir::Access &Src,
                                              const ir::Access &Dst,
                                              DepKind Kind);

private:
  /// What the one-time quick-test classification concluded about the pair.
  enum class QuickVerdict : uint8_t {
    Unknown,           ///< quick tests cannot decide; run the Omega test
    Independent,       ///< some subscript row is provably unsolvable
    TriviallyDependent ///< subscripts trivially equal over non-empty
                       ///< constant spaces with no common loop: the answer
                       ///< is decided by textual order alone
  };
  enum class QuickClass : uint8_t { None, ZIV, GCD, Bounds };

  void ensureQuickTests();
  void ensureSnapshot();
  const Problem &pairProblem();

  std::optional<Dependence> solveOrdered(unsigned SI, unsigned DI,
                                         const ir::Access &Src,
                                         const ir::Access &Dst, DepKind Kind);

  DepSpace Space;
  OmegaContext &Ctx;

  std::optional<Problem> Pair;                ///< shared pair problem
  std::optional<EliminationSnapshot> Snap;    ///< reduction of *Pair

  bool QuickDone = false;
  QuickVerdict Verdict = QuickVerdict::Unknown;
  QuickClass Class = QuickClass::None;
};

} // namespace deps
} // namespace omega

#endif // OMEGA_DEPS_PAIRSOLVER_H
