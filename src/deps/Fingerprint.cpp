//===- deps/Fingerprint.cpp -----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "deps/Fingerprint.h"

#include "support/Hashing.h"

#include <algorithm>
#include <map>

using namespace omega;
using namespace omega::deps;
using omega::ir::Access;
using omega::ir::AffineExpr;
using omega::ir::LoopInfo;
using omega::ir::SymId;
using omega::ir::SymKind;

//===----------------------------------------------------------------------===//
// Serialization walk
//===----------------------------------------------------------------------===//
//
// The key is built by walking the instance list in a fixed order --
// instance 0's loops outermost-first, then instance 1's, ..., then each
// instance's subscripts -- and assigning dense local ids to symbols and
// loops at first use. Because ids depend only on the walk order (never
// on SymId creation order or names), two structurally identical pairs
// built from different programs produce identical keys.
//
// Grammar (all fields ';'/','-free except where quoted):
//   key       := inst*  pairBits
//   inst      := "|I{w=" 0/1 ";L=[" loopRef,* "];S=[" expr,* "]}"
//   loopRef   := "l" id                      -- back reference
//              | "l" id "!{i=" symRef ";r=" 0/1 ";st=" int
//                ";lo=[" expr,* "];up=[" expr,* "]}"   -- first use
//   symRef    := "#" id                      -- back reference
//              | "#" id "!I"                 -- loop iteration symbol
//              | "#" id "!S"                 -- symbolic constant
//              | "#" id "!T[p=" symRef,* ";x=" 0/1 0/1 "]"  -- term:
//                loop params, (index-array read, array written) bits
//   expr      := "(" const {"," symRef "*" coeff} ")"  -- TermList order
//   pairBits  := "|O{" ("s" | "ab=" 0/1 ";ba=" 0/1 ...) "}"
//
// Shared loops between instances serialize as back references, so the
// key captures numCommonLoops exactly; shared symbols likewise capture
// the shared-variable structure DepSpace builds.

namespace {

class Walk {
public:
  Walk(const ir::AnalyzedProgram &AP, const std::set<std::string> &Written)
      : AP(AP), Written(Written) {}

  std::string take() { return std::move(Out); }

  void instance(const Access &A) {
    Out += "|I{w=";
    Out += A.IsWrite ? '1' : '0';
    Out += ";L=[";
    for (unsigned D = 0; D != A.Loops.size(); ++D) {
      if (D)
        Out += ',';
      loopRef(A.Loops[D]);
    }
    Out += "];S=[";
    for (unsigned S = 0; S != A.Subscripts.size(); ++S) {
      if (S)
        Out += ',';
      expr(A.Subscripts[S]);
    }
    Out += "]}";
  }

private:
  void loopRef(const LoopInfo *L) {
    auto [It, New] = LoopIds.emplace(L, LoopIds.size());
    Out += 'l';
    Out += std::to_string(It->second);
    if (!New)
      return;
    Out += "!{i=";
    symRef(L->IterSym);
    Out += ";r=";
    Out += L->Reversed ? '1' : '0';
    Out += ";st=";
    Out += std::to_string(L->Stride);
    Out += ";lo=[";
    for (unsigned I = 0; I != L->Lower.size(); ++I) {
      if (I)
        Out += ',';
      expr(L->Lower[I]);
    }
    Out += "];up=[";
    for (unsigned I = 0; I != L->Upper.size(); ++I) {
      if (I)
        Out += ',';
      expr(L->Upper[I]);
    }
    Out += "]}";
  }

  void symRef(SymId S) {
    auto [It, New] = SymIds.emplace(S, SymIds.size());
    Out += '#';
    Out += std::to_string(It->second);
    if (!New)
      return;
    const ir::SymbolInfo &Info = AP.Symbols.info(S);
    switch (Info.Kind) {
    case SymKind::LoopIter:
      Out += "!I";
      break;
    case SymKind::SymConst:
      Out += "!S";
      break;
    case SymKind::Term:
      Out += "!T[p=";
      for (unsigned I = 0; I != Info.LoopParams.size(); ++I) {
        if (I)
          Out += ',';
        symRef(Info.LoopParams[I]);
      }
      Out += ";x=";
      Out += Info.IsIndexArrayRead ? '1' : '0';
      Out += Info.IsIndexArrayRead && Written.count(Info.IndexArray) ? '1'
                                                                    : '0';
      Out += ']';
      break;
    }
  }

  void expr(const AffineExpr &E) {
    Out += '(';
    Out += std::to_string(E.getConstant());
    for (const auto &[Sym, Coeff] : E.terms()) {
      Out += ',';
      symRef(Sym);
      Out += '*';
      Out += std::to_string(Coeff);
    }
    Out += ')';
  }

  const ir::AnalyzedProgram &AP;
  const std::set<std::string> &Written;
  std::string Out;
  std::map<const LoopInfo *, unsigned> LoopIds;
  std::map<SymId, unsigned> SymIds;
};

} // namespace

//===----------------------------------------------------------------------===//
// FingerprintBuilder
//===----------------------------------------------------------------------===//

FingerprintBuilder::FingerprintBuilder(const ir::AnalyzedProgram &AP)
    : AP(AP) {
  for (const Access &A : AP.Accesses)
    if (A.IsWrite)
      WrittenArrays.insert(A.Array);
}

std::string
FingerprintBuilder::serialize(const std::vector<const Access *> &Insts) const {
  Walk W(AP, WrittenArrays);
  for (const Access *A : Insts)
    W.instance(*A);
  std::string Key = W.take();
  Key += "|O{";
  if (Insts.size() == 2 && Insts[0] == Insts[1]) {
    Key += 's'; // self pair: both schedule relations are trivially known
  } else {
    for (unsigned I = 0; I != Insts.size(); ++I)
      for (unsigned J = 0; J != Insts.size(); ++J) {
        if (I == J)
          continue;
        Key += ir::AnalyzedProgram::textuallyBefore(*Insts[I], *Insts[J])
                   ? '1'
                   : '0';
      }
  }
  Key += '}';
  return Key;
}

PairFingerprint FingerprintBuilder::pair(const Access &A,
                                         const Access &B) const {
  if (&A == &B)
    return {serialize({&A, &B}), false};
  std::string AB = serialize({&A, &B});
  std::string BA = serialize({&B, &A});
  // Lexicographic minimum of the two orientations is the canonical key.
  // The orientations can only tie when both serializations are
  // byte-identical, which requires equal read/write roles and equal
  // schedule bits -- impossible for the write/read and write/write pairs
  // the engine groups (distinct accesses always differ in their Path's
  // final read/write entry or their textual order). Prefer the caller's
  // orientation on a tie anyway, keeping Swapped deterministic.
  if (BA < AB)
    return {std::move(BA), true};
  return {std::move(AB), false};
}

std::string FingerprintBuilder::killGroup(
    const Access &Read, const std::vector<const Access *> &Writes) const {
  std::vector<const Access *> Insts;
  Insts.reserve(Writes.size() + 1);
  Insts.push_back(&Read);
  Insts.insert(Insts.end(), Writes.begin(), Writes.end());
  return serialize(Insts);
}

uint64_t omega::deps::fingerprintHash(const std::string &Key) {
  uint64_t H = mix64(Key.size());
  for (char C : Key)
    H = mix64(H ^ static_cast<uint64_t>(static_cast<unsigned char>(C)));
  return H;
}
