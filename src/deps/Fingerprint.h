//===- deps/Fingerprint.h - Canonical access-pair fingerprints ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical fingerprints for unordered access pairs and kill groups.
///
/// A fingerprint is a deterministic serialization of everything a pair's
/// dependence solve can observe: the iteration spaces of both accesses
/// (loop bounds, strides, nesting and sharing of loops), the subscript
/// functions, the schedule relation (textual order both ways, self pair
/// or not, read/write roles), and the symbolic facts the constraint
/// system is sensitive to (symbol identity/sharing patterns, loop
/// parameterization, and whether an index-array read sees mutable
/// state). Source-level names are deliberately excluded: renaming
/// variables, arrays, or symbolic constants leaves fingerprints
/// unchanged, while any semantic edit changes them.
///
/// Two pairs with equal fingerprints present byte-identical constraint
/// systems to the solver and traverse byte-identical decision paths, so
/// the full dependence answer of one can be reused for the other. The
/// delta planner (src/engine/DeltaPlanner.h) relies on exactly this
/// property to carry results across program versions.
///
/// Following the QueryCache convention, the canonical string itself is
/// the match key -- hashes are never used as keys, only for display.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_DEPS_FINGERPRINT_H
#define OMEGA_DEPS_FINGERPRINT_H

#include "ir/Sema.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace omega {
namespace deps {

/// Canonical key for one unordered access pair.
struct PairFingerprint {
  /// The canonical serialization; equal keys imply identical solves.
  std::string Key;
  /// True when the canonical orientation swaps the caller's (A, B) order.
  /// Reused outcomes must be mirrored back before materialization.
  bool Swapped = false;
};

/// Builds fingerprints over one analyzed program. Construction gathers
/// the program-global facts a pair solve can observe from outside the
/// pair itself (today: the set of written arrays, which decides whether
/// an index-array read sees mutable state).
class FingerprintBuilder {
public:
  explicit FingerprintBuilder(const ir::AnalyzedProgram &AP);

  /// Fingerprint of the unordered pair {A, B} (A == B for a self pair).
  /// Variable-order independent: the lexicographically smaller of the
  /// two orientations is the key, and Swapped records whether that
  /// orientation lists \p B first.
  PairFingerprint pair(const ir::Access &A, const ir::Access &B) const;

  /// Fingerprint of a kill group: one read plus every write of the
  /// read's array, in program enumeration order. Covers the footprints
  /// of all member accesses and their pairwise schedule relations, so
  /// it determines every input of the engine's kill phase for this
  /// read. Order-sensitive by design (the engine enumerates writes
  /// deterministically); no canonical reorientation is needed.
  std::string killGroup(const ir::Access &Read,
                        const std::vector<const ir::Access *> &Writes) const;

private:
  /// Serializes the ordered instance list plus pairwise schedule bits.
  std::string serialize(const std::vector<const ir::Access *> &Insts) const;

  const ir::AnalyzedProgram &AP;
  /// Arrays written anywhere in the program (mirrors DepSpace's notion
  /// of mutable state for index-array reads).
  std::set<std::string> WrittenArrays;
};

/// 64-bit display hash of a fingerprint key (mix64 chain over the
/// bytes). Never used for matching.
uint64_t fingerprintHash(const std::string &Key);

} // namespace deps
} // namespace omega

#endif // OMEGA_DEPS_FINGERPRINT_H
