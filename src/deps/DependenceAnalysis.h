//===- deps/DependenceAnalysis.h - Pairwise dependence computation --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-based (unrefined) dependence computation: for each ordered pair
/// of references to one array, build the Omega-test problem -- iteration
/// spaces, subscript equality, execution order by carried level -- decide
/// feasibility, and summarize distances per level. This is the "standard
/// analysis" the paper's Figure 6/7 measurements compare against; the
/// Section 4 extensions live in src/analysis.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_DEPS_DEPENDENCEANALYSIS_H
#define OMEGA_DEPS_DEPENDENCEANALYSIS_H

#include "deps/DepSpace.h"
#include "deps/Dependence.h"

#include <optional>

namespace omega {
namespace deps {

class DependenceAnalysis {
public:
  /// Analyses run against \p Ctx: its stats record the work, its cache (if
  /// any) memoizes the Omega queries. Defaults to the calling thread's
  /// current context; the parallel engine passes each worker's own.
  explicit DependenceAnalysis(const ir::AnalyzedProgram &AP,
                              OmegaContext &Ctx = OmegaContext::current())
      : AP(AP), Ctx(Ctx) {}

  /// The dependence of kind \p Kind from \p Src to \p Dst (references to
  /// the same array), or nullopt when no level is feasible.
  std::optional<Dependence> computeDependence(const ir::Access &Src,
                                              const ir::Access &Dst,
                                              DepKind Kind) const;

  /// Every flow, anti, and output dependence of the program.
  std::vector<Dependence> computeAllDependences() const;

  /// The dependences of one kind.
  std::vector<Dependence> computeDependences(DepKind Kind) const;

private:
  const ir::AnalyzedProgram &AP;
  OmegaContext &Ctx;
};

/// Builds the base problem for an ordered pair: iteration spaces of both
/// instances plus subscript equality (no ordering constraints).
Problem buildPairProblem(const DepSpace &Space);

} // namespace deps
} // namespace omega

#endif // OMEGA_DEPS_DEPENDENCEANALYSIS_H
