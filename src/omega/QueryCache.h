//===- omega/QueryCache.h - Concurrent memoization of Omega answers ------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program dependence analysis asks the Omega test the same question
/// many times: the iteration-space conjunctions of different (write, read)
/// pairs over one loop nest normalize to identical systems, and the
/// refine/cover/kill passes re-derive the same gists. This cache memoizes
///
///  * satisfiability verdicts, keyed by a canonical serialization of the
///    normalized Problem that is independent of variable order (columns
///    are reordered by a structural signature, rows sorted; see
///    canonicalSatKey), and
///  * gist results, keyed by an exact serialization of the (p, q) row
///    systems over their shared layout (the result's rows are re-hung on
///    the caller's variable table, so names never matter).
///
/// Keys are full serializations, not hashes, so a lookup can never confuse
/// two distinct problems. The cache is sharded: each shard is a mutex plus
/// a hash map, and the shard is chosen by the key's hash, so concurrent
/// workers rarely contend. Hit/miss counters are atomics.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_QUERYCACHE_H
#define OMEGA_OMEGA_QUERYCACHE_H

#include "omega/OmegaStats.h"
#include "omega/Problem.h"
#include "omega/Snapshot.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace omega {

struct QueryCacheStats {
  uint64_t SatHits = 0;
  uint64_t SatMisses = 0;
  uint64_t GistHits = 0;
  uint64_t GistMisses = 0;

  uint64_t hits() const { return SatHits + GistHits; }
  uint64_t misses() const { return SatMisses + GistMisses; }
};

class QueryCache {
public:
  explicit QueryCache(unsigned ShardCount = 16);
  ~QueryCache();

  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  /// The memoized satisfiability verdict for \p Key, if any. Counts a hit
  /// or a miss -- on the cache's atomics and, when \p Stats is non-null,
  /// on the querying context's SatCacheHits/SatCacheMisses.
  std::optional<bool> lookupSat(const std::string &Key,
                                OmegaStats *Stats = nullptr);
  void storeSat(const std::string &Key, bool Satisfiable);

  /// The memoized gist row system for \p Key, if any. Counts a hit or a
  /// miss (also on \p Stats when non-null, like lookupSat). The rows are
  /// over the caller's layout (gist keys serialize the full layout
  /// structure, so equal keys imply compatible tables).
  std::optional<std::vector<Constraint>> lookupGist(const std::string &Key,
                                                    OmegaStats *Stats = nullptr);
  void storeGist(const std::string &Key, std::vector<Constraint> Rows);

  /// The memoized elimination snapshot for \p Key, if any (the serving
  /// stack's cross-request snapshot reuse: a snapshot is a deterministic
  /// function of the exact pair system + keep mask the key serializes, so
  /// adopting one is result-identical to rebuilding it). Counts hits and
  /// misses on \p Stats' SnapshotCache counters when non-null. Snapshots
  /// are in-memory only -- save()/load() persist just sat/gist entries.
  std::optional<EliminationSnapshot>
  lookupSnapshot(const std::string &Key, OmegaStats *Stats = nullptr);
  /// Stores a snapshot, evicting least-recently-used entries beyond the
  /// configured capacity. Evictions count on the cache's atomic and on
  /// \p Stats' SnapshotEvictions when non-null. Eviction only ever
  /// forces a rebuild on a future miss -- never a wrong answer.
  void storeSnapshot(const std::string &Key, const EliminationSnapshot &Snap,
                     OmegaStats *Stats = nullptr);

  /// Bounds the snapshot store to \p Cap entries across all shards
  /// (0 = unbounded, the default). Shards split the budget evenly, one
  /// entry minimum each. Lowering the cap evicts immediately.
  void setSnapshotCapacity(std::uint64_t Cap);

  /// Snapshots evicted over the cache's lifetime.
  uint64_t snapshotEvictions() const {
    return SnapEvictions.load(std::memory_order_relaxed);
  }

  QueryCacheStats stats() const;
  /// Number of memoized entries (all kinds).
  std::size_t size() const;
  /// Number of resident elimination snapshots (the LRU-bounded store's
  /// occupancy; the serving stack exposes it as a gauge).
  std::size_t snapshotCount() const;
  void clear();

  //===--------------------------------------------------------------------===//
  // Persistence (the omega-serve warm-start file)
  //===--------------------------------------------------------------------===//

  /// Version stamped into the on-disk format; load() rejects any other.
  static constexpr uint32_t PersistFormatVersion = 1;

  /// Serializes every sat and gist entry to \p Out in a versioned binary
  /// format (magic, version, entries sorted by key, trailing checksum).
  /// Sorted emission makes save -> load -> save byte-identical. Returns
  /// false on a write failure.
  bool save(std::ostream &Out) const;

  /// Restores entries previously written by save(). Validates the magic,
  /// version, checksum, and every length field; on any mismatch the cache
  /// is left empty (a corrupt warm-start file degrades to a cold start,
  /// never to wrong answers) and \p Err describes the rejection.
  bool load(std::istream &In, std::string &Err);

private:
  struct Shard;
  Shard &shardFor(const std::string &Key);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> SatHits{0}, SatMisses{0};
  std::atomic<uint64_t> GistHits{0}, GistMisses{0};
  std::atomic<uint64_t> SnapEvictions{0};
};

/// Builds the satisfiability cache key of \p P: the problem is copied and
/// normalized, live columns are reordered by a variable-order-independent
/// structural signature, rows are serialized over the new column order and
/// sorted. Two problems equal up to column permutation and variable names
/// produce the same key (ties between structurally identical columns can
/// miss, never collide). \p ModeTag distinguishes solver modes. Returns
/// std::nullopt when the key is unreliable (the problem's arithmetic
/// saturated during normalization) and the query must not be cached.
std::optional<std::string> canonicalSatKey(const Problem &P, int ModeTag);

/// Builds the gist cache key of (p given q): an exact serialization of
/// both row systems plus the layout's protected/dead structure (names
/// excluded). Not order-canonical -- gist results must be re-hung on the
/// caller's exact layout, so only textually identical layouts may share.
std::string gistCacheKey(const Problem &P, const Problem &Given,
                         bool UseFastChecks);

/// Builds the snapshot cache key of (\p P reduced keeping \p Keep): an
/// exact serialization of the row system, the layout's protected/dead
/// structure, and the keep mask. Like gist keys it is deliberately not
/// order-canonical -- an adopted snapshot's VarIds must line up with the
/// caller's pair problem column for column.
std::string snapshotCacheKey(const Problem &P, const std::vector<bool> &Keep);

} // namespace omega

#endif // OMEGA_OMEGA_QUERYCACHE_H
