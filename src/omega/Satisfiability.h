//===- omega/Satisfiability.h - Integer satisfiability via the Omega test -===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core decision procedure: does a conjunction of integer linear
/// constraints have an integer solution? Equalities are removed by
/// substitution, then variables are eliminated one at a time, preferring
/// exact eliminations; when an elimination is inexact the real shadow,
/// dark shadow and splinters resolve the answer (Section 3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_SATISFIABILITY_H
#define OMEGA_OMEGA_SATISFIABILITY_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"

#include <optional>
#include <vector>

namespace omega {

/// How to resolve inexact eliminations.
enum class SatMode {
  /// Full Omega test: dark shadow plus splinters; exact integer answer.
  Exact,
  /// Classic Fourier-Motzkin real relaxation: decide from the real shadow
  /// alone. May report "satisfiable" for systems with only rational
  /// solutions; this is the conservative baseline older dependence tests
  /// effectively use, kept for the ablation benchmarks.
  RealShadowOnly,
};

/// Options controlling the satisfiability search. The defaults implement
/// the full Omega test; the flags exist for the ablation benchmarks.
struct SatOptions {
  SatMode Mode = SatMode::Exact;
};

/// Returns true iff \p P has an integer solution. \p P is taken by value;
/// the search mutates its copy freely. Counters go to \p Ctx; when the
/// context carries a QueryCache the answer is memoized under the canonical
/// key of the normalized problem.
bool isSatisfiable(Problem P, const SatOptions &Opts = SatOptions(),
                   OmegaContext &Ctx = OmegaContext::current());

/// Returns true iff \p P has no integer solution.
inline bool isUnsatisfiable(Problem P, const SatOptions &Opts = SatOptions(),
                            OmegaContext &Ctx = OmegaContext::current()) {
  return !isSatisfiable(std::move(P), Opts, Ctx);
}

/// Finds one integer solution of \p P (a value for every variable,
/// including wildcards; dead variables get 0), or nullopt when \p P is
/// unsatisfiable. Variables are pinned one at a time to an endpoint of
/// their exact projected range, so the search never backtracks. Every
/// returned point is verified against the original rows before it is
/// handed back, so a witness is trustworthy even when the SAT verdict
/// itself was a conservative answer under coefficient saturation —
/// saturated queries yield nullopt rather than a fabricated point.
std::optional<std::vector<int64_t>>
findSolution(const Problem &P, OmegaContext &Ctx = OmegaContext::current());

} // namespace omega

#endif // OMEGA_OMEGA_SATISFIABILITY_H
