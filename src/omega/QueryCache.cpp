//===- omega/QueryCache.cpp -----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/QueryCache.h"

#include "support/Hashing.h"

#include <algorithm>
#include <istream>
#include <iterator>
#include <list>
#include <map>
#include <ostream>

using namespace omega;

//===----------------------------------------------------------------------===//
// Sharded store
//===----------------------------------------------------------------------===//

struct QueryCache::Shard {
  std::mutex M;
  std::unordered_map<std::string, bool> Sat;
  std::unordered_map<std::string, std::vector<Constraint>> Gist;
  /// Snapshots carry an LRU hook: SnapLRU orders keys most-recent-first,
  /// and entries beyond SnapCap are evicted from the tail on store.
  struct SnapEntry {
    EliminationSnapshot Snap;
    std::list<std::string>::iterator Recency;
  };
  std::unordered_map<std::string, SnapEntry> Snap;
  std::list<std::string> SnapLRU;
  std::size_t SnapCap = 0; ///< 0 = unbounded

  /// Drops least-recently-used snapshots down to the cap (caller locks).
  /// Returns how many were evicted.
  std::size_t enforceSnapCap() {
    std::size_t Evicted = 0;
    while (SnapCap != 0 && Snap.size() > SnapCap) {
      Snap.erase(SnapLRU.back());
      SnapLRU.pop_back();
      ++Evicted;
    }
    return Evicted;
  }
};

QueryCache::QueryCache(unsigned ShardCount) {
  if (ShardCount == 0)
    ShardCount = 1;
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

QueryCache::~QueryCache() = default;

QueryCache::Shard &QueryCache::shardFor(const std::string &Key) {
  return *Shards[std::hash<std::string>{}(Key) % Shards.size()];
}

std::optional<bool> QueryCache::lookupSat(const std::string &Key,
                                          OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Sat.find(Key);
  if (It == S.Sat.end()) {
    SatMisses.fetch_add(1, std::memory_order_relaxed);
    if (Stats)
      ++Stats->SatCacheMisses;
    return std::nullopt;
  }
  SatHits.fetch_add(1, std::memory_order_relaxed);
  if (Stats)
    ++Stats->SatCacheHits;
  return It->second;
}

void QueryCache::storeSat(const std::string &Key, bool Satisfiable) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Sat.emplace(Key, Satisfiable);
}

std::optional<std::vector<Constraint>>
QueryCache::lookupGist(const std::string &Key, OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gist.find(Key);
  if (It == S.Gist.end()) {
    GistMisses.fetch_add(1, std::memory_order_relaxed);
    if (Stats)
      ++Stats->GistCacheMisses;
    return std::nullopt;
  }
  GistHits.fetch_add(1, std::memory_order_relaxed);
  if (Stats)
    ++Stats->GistCacheHits;
  return It->second;
}

void QueryCache::storeGist(const std::string &Key,
                           std::vector<Constraint> Rows) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Gist.emplace(Key, std::move(Rows));
}

std::optional<EliminationSnapshot>
QueryCache::lookupSnapshot(const std::string &Key, OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Snap.find(Key);
  if (It == S.Snap.end()) {
    if (Stats)
      ++Stats->SnapshotCacheMisses;
    return std::nullopt;
  }
  S.SnapLRU.splice(S.SnapLRU.begin(), S.SnapLRU, It->second.Recency);
  if (Stats)
    ++Stats->SnapshotCacheHits;
  return It->second.Snap;
}

void QueryCache::storeSnapshot(const std::string &Key,
                               const EliminationSnapshot &Snap,
                               OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::size_t Evicted = 0;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Snap.find(Key);
    if (It != S.Snap.end()) {
      S.SnapLRU.splice(S.SnapLRU.begin(), S.SnapLRU, It->second.Recency);
    } else {
      S.SnapLRU.push_front(Key);
      S.Snap.emplace(Key, Shard::SnapEntry{Snap, S.SnapLRU.begin()});
      Evicted = S.enforceSnapCap();
    }
  }
  if (Evicted) {
    SnapEvictions.fetch_add(Evicted, std::memory_order_relaxed);
    if (Stats)
      Stats->SnapshotEvictions += Evicted;
  }
}

void QueryCache::setSnapshotCapacity(std::uint64_t Cap) {
  // Shards split the budget evenly; a nonzero cap grants each shard at
  // least one entry, so the effective total is at least the shard count.
  std::size_t PerShard =
      Cap == 0 ? 0
               : std::max<std::size_t>(1, static_cast<std::size_t>(
                                              Cap / Shards.size()));
  std::size_t Evicted = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    S->SnapCap = PerShard;
    Evicted += S->enforceSnapCap();
  }
  if (Evicted)
    SnapEvictions.fetch_add(Evicted, std::memory_order_relaxed);
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats R;
  R.SatHits = SatHits.load(std::memory_order_relaxed);
  R.SatMisses = SatMisses.load(std::memory_order_relaxed);
  R.GistHits = GistHits.load(std::memory_order_relaxed);
  R.GistMisses = GistMisses.load(std::memory_order_relaxed);
  return R;
}

std::size_t QueryCache::size() const {
  std::size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Sat.size() + S->Gist.size() + S->Snap.size();
  }
  return N;
}

std::size_t QueryCache::snapshotCount() const {
  std::size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Snap.size();
  }
  return N;
}

void QueryCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    S->Sat.clear();
    S->Gist.clear();
    S->Snap.clear();
  }
}

//===----------------------------------------------------------------------===//
// Key construction
//===----------------------------------------------------------------------===//

namespace {

void appendI64(std::string &Out, int64_t V) {
  uint64_t U = static_cast<uint64_t>(V);
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((U >> (8 * I)) & 0xff));
}

void appendU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Serializes one row over an explicit column order (fixed width given the
/// column count, so sorted rows concatenate unambiguously).
std::string rowKey(const Constraint &Row, const std::vector<VarId> &Columns) {
  std::string Out;
  Out.reserve(9 + 8 * Columns.size());
  Out.push_back(Row.isEquality() ? 'E' : 'G');
  appendI64(Out, Row.getConstant());
  for (VarId V : Columns)
    appendI64(Out, Row.getCoeff(V));
  return Out;
}

} // namespace

std::optional<std::string> omega::canonicalSatKey(const Problem &P,
                                                  int ModeTag) {
  // Key construction must be free of observable side effects: save the
  // thread's sticky overflow flag and restore it exactly (an OverflowScope
  // would OR a canonicalization overflow back into the caller's view and
  // change the caller's conservative-fallback behavior depending on
  // whether a cache is attached).
  bool &Flag = arithOverflowFlag();
  bool Saved = Flag;
  Flag = false;

  Problem Q = P;
  Problem::NormalizeResult NR = Q.normalize();
  bool Overflowed = Flag;
  Flag = Saved;
  if (Overflowed)
    return std::nullopt;

  std::string Key;
  Key.push_back('S');
  Key.push_back(static_cast<char>(ModeTag));
  if (NR == Problem::NormalizeResult::False) {
    // Every trivially inconsistent system shares one key.
    Key.push_back('F');
    return Key;
  }

  // Live columns only: dead or mentioned-nowhere variables cannot affect
  // satisfiability, and protection is irrelevant to it.
  std::vector<VarId> Live;
  for (VarId V = 0, E = Q.getNumVars(); V != static_cast<VarId>(E); ++V)
    if (Q.involves(V))
      Live.push_back(V);

  // Structural signature per column, independent of row and column order:
  // a commutative accumulation (shared mix64 from support/Hashing.h) over
  // the rows the column appears in. One pass over the rows fills every
  // column's accumulator.
  std::vector<uint64_t> ColSig(Q.getNumVars(), 0);
  for (const Constraint &Row : Q.constraints()) {
    const uint64_t RowTag =
        static_cast<uint64_t>(Row.getConstant()) ^
        (Row.isEquality() ? 0x45ull : 0x47ull) * 0x9e3779b97f4a7c15ull;
    const int64_t *C = Row.coeffs().data();
    for (unsigned V = 0, E = Row.getNumVars(); V != E; ++V)
      if (C[V] != 0)
        ColSig[V] += mix64(mix64(static_cast<uint64_t>(C[V])) ^ RowTag);
  }
  struct ColOrder {
    uint64_t Sig;
    VarId V;
  };
  std::vector<ColOrder> Order;
  Order.reserve(Live.size());
  for (VarId V : Live)
    Order.push_back({ColSig[V], V});
  // Ties between structurally identical columns fall back to the original
  // index: deterministic, and at worst a cache miss for a permuted twin.
  std::sort(Order.begin(), Order.end(), [](const ColOrder &A, const ColOrder &B) {
    return A.Sig != B.Sig ? A.Sig < B.Sig : A.V < B.V;
  });
  std::vector<VarId> Columns;
  Columns.reserve(Order.size());
  for (const ColOrder &C : Order)
    Columns.push_back(C.V);

  appendU32(Key, static_cast<uint32_t>(Columns.size()));
  appendU32(Key, static_cast<uint32_t>(Q.getNumConstraints()));
  // Sort rows into a canonical order. The comparisons are prescreened by a
  // row hash over the canonical column positions -- the same
  // hashCoeffTerm scheme as Constraint's structural signature -- so only
  // hash-equal rows pay a byte-wise key comparison.
  struct RowOrder {
    uint64_t H;
    std::string K;
  };
  std::vector<RowOrder> Rows;
  Rows.reserve(Q.getNumConstraints());
  for (const Constraint &Row : Q.constraints()) {
    uint64_t H = mix64(static_cast<uint64_t>(Row.getConstant()) ^
                       (Row.isEquality() ? 0x45ull : 0x47ull));
    for (unsigned I = 0, E = Columns.size(); I != E; ++I) {
      int64_t C = Row.getCoeff(Columns[I]);
      if (C != 0)
        H += hashCoeffTerm(I, C);
    }
    Rows.push_back({H, rowKey(Row, Columns)});
  }
  std::sort(Rows.begin(), Rows.end(), [](const RowOrder &A, const RowOrder &B) {
    return A.H != B.H ? A.H < B.H : A.K < B.K;
  });
  for (const RowOrder &R : Rows)
    Key += R.K;
  return Key;
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

namespace {

constexpr char PersistMagic[4] = {'O', 'M', 'Q', 'C'};

/// FNV-1a 64 over the payload; cheap, deterministic, and enough to reject
/// torn or bit-flipped warm-start files (integrity, not security).
uint64_t checksum64(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

void appendBytes(std::string &Out, const void *P, std::size_t N) {
  Out.append(static_cast<const char *>(P), N);
}

void appendU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendLenString(std::string &Out, const std::string &S) {
  appendU32(Out, static_cast<uint32_t>(S.size()));
  Out += S;
}

/// Bounds-checked little-endian reader over a loaded payload.
struct Reader {
  const std::string &Buf;
  std::size_t Pos = 0;
  bool Ok = true;

  bool take(void *Out, std::size_t N) {
    if (!Ok || Pos + N > Buf.size()) {
      Ok = false;
      return false;
    }
    std::copy_n(Buf.data() + Pos, N, static_cast<char *>(Out));
    Pos += N;
    return true;
  }
  uint32_t u32() {
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I) {
      unsigned char B = 0;
      if (!take(&B, 1))
        return 0;
      V |= static_cast<uint32_t>(B) << (8 * I);
    }
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I) {
      unsigned char B = 0;
      if (!take(&B, 1))
        return 0;
      V |= static_cast<uint64_t>(B) << (8 * I);
    }
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  uint8_t u8() {
    unsigned char B = 0;
    take(&B, 1);
    return B;
  }
  std::string lenString(uint32_t MaxLen = 1u << 24) {
    uint32_t N = u32();
    if (!Ok || N > MaxLen || Pos + N > Buf.size()) {
      Ok = false;
      return std::string();
    }
    std::string S = Buf.substr(Pos, N);
    Pos += N;
    return S;
  }
};

void appendConstraintRow(std::string &Out, const Constraint &Row) {
  Out.push_back(Row.isEquality() ? 'E' : 'G');
  Out.push_back(Row.isRed() ? 1 : 0);
  appendU32(Out, Row.getNumVars());
  appendI64(Out, Row.getConstant());
  for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
    appendI64(Out, Row.getCoeff(V));
}

bool readConstraintRow(Reader &R, std::vector<Constraint> &Rows) {
  uint8_t KindTag = R.u8();
  uint8_t Red = R.u8();
  uint32_t NumVars = R.u32();
  if (!R.Ok || (KindTag != 'E' && KindTag != 'G') || Red > 1 ||
      NumVars > (1u << 20))
    return false;
  Constraint Row(KindTag == 'E' ? ConstraintKind::EQ : ConstraintKind::GEQ,
                 NumVars);
  Row.setConstant(R.i64());
  for (uint32_t V = 0; V != NumVars; ++V)
    Row.setCoeff(static_cast<VarId>(V), R.i64());
  Row.setRed(Red != 0);
  if (!R.Ok)
    return false;
  Rows.push_back(std::move(Row));
  return true;
}

} // namespace

bool QueryCache::save(std::ostream &Out) const {
  // Gather under the shard locks, then emit sorted by key so the byte
  // stream is independent of hash-map iteration order (save -> load ->
  // save round-trips bit-identically; the persistence test pins this).
  std::map<std::string, bool> Sat;
  std::map<std::string, const std::vector<Constraint> *> Gist;
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (const auto &S : Shards) {
    Locks.emplace_back(S->M);
    for (const auto &[K, V] : S->Sat)
      Sat.emplace(K, V);
    for (const auto &[K, V] : S->Gist)
      Gist.emplace(K, &V);
  }

  std::string Payload;
  appendU64(Payload, Sat.size());
  for (const auto &[K, V] : Sat) {
    appendLenString(Payload, K);
    Payload.push_back(V ? 1 : 0);
  }
  appendU64(Payload, Gist.size());
  for (const auto &[K, Rows] : Gist) {
    appendLenString(Payload, K);
    appendU32(Payload, static_cast<uint32_t>(Rows->size()));
    for (const Constraint &Row : *Rows)
      appendConstraintRow(Payload, Row);
  }
  Locks.clear();

  std::string Header;
  appendBytes(Header, PersistMagic, sizeof(PersistMagic));
  appendU32(Header, PersistFormatVersion);
  Out.write(Header.data(), static_cast<std::streamsize>(Header.size()));
  Out.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  std::string Tail;
  appendU64(Tail, checksum64(Payload));
  Out.write(Tail.data(), static_cast<std::streamsize>(Tail.size()));
  return static_cast<bool>(Out);
}

bool QueryCache::load(std::istream &In, std::string &Err) {
  clear();
  auto Reject = [&](const std::string &Why) {
    clear();
    Err = "query-cache file rejected: " + Why;
    return false;
  };

  std::string All((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  if (All.size() < sizeof(PersistMagic) + 4 + 8 + 8)
    return Reject("truncated header");
  if (All.compare(0, sizeof(PersistMagic), PersistMagic,
                  sizeof(PersistMagic)) != 0)
    return Reject("bad magic");
  Reader Head{All, sizeof(PersistMagic)};
  uint32_t Version = Head.u32();
  if (Version != PersistFormatVersion)
    return Reject("unsupported format version " + std::to_string(Version));

  std::string Payload = All.substr(Head.Pos, All.size() - Head.Pos - 8);
  Reader Tail{All, All.size() - 8};
  if (checksum64(Payload) != Tail.u64())
    return Reject("checksum mismatch");

  Reader R{Payload, 0};
  uint64_t SatCount = R.u64();
  if (SatCount > (1ull << 32))
    return Reject("implausible sat entry count");
  for (uint64_t I = 0; I != SatCount && R.Ok; ++I) {
    std::string Key = R.lenString();
    uint8_t V = R.u8();
    if (!R.Ok || V > 1)
      return Reject("malformed sat entry");
    storeSat(Key, V != 0);
  }
  uint64_t GistCount = R.u64();
  if (!R.Ok || GistCount > (1ull << 32))
    return Reject("implausible gist entry count");
  for (uint64_t I = 0; I != GistCount && R.Ok; ++I) {
    std::string Key = R.lenString();
    uint32_t NumRows = R.u32();
    if (!R.Ok || NumRows > (1u << 20))
      return Reject("malformed gist entry");
    std::vector<Constraint> Rows;
    Rows.reserve(NumRows);
    for (uint32_t Row = 0; Row != NumRows; ++Row)
      if (!readConstraintRow(R, Rows))
        return Reject("malformed gist row");
    storeGist(Key, std::move(Rows));
  }
  if (!R.Ok || R.Pos != Payload.size())
    return Reject("trailing or missing payload bytes");
  return true;
}

std::string omega::gistCacheKey(const Problem &P, const Problem &Given,
                                bool UseFastChecks) {
  assert(P.getNumVars() == Given.getNumVars() &&
         "gist arguments share one layout");
  std::string Key;
  Key.push_back('g');
  Key.push_back(UseFastChecks ? '1' : '0');
  appendU32(Key, P.getNumVars());
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    Key.push_back(static_cast<char>((P.isProtected(V) ? 1 : 0) |
                                    (P.isDead(V) ? 2 : 0)));
  auto appendRows = [&Key](const Problem &Q) {
    appendU32(Key, Q.getNumConstraints());
    for (const Constraint &Row : Q.constraints()) {
      Key.push_back(Row.isEquality() ? 'E' : 'G');
      Key.push_back(Row.isRed() ? 'r' : 'b');
      appendI64(Key, Row.getConstant());
      for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
        appendI64(Key, Row.getCoeff(V));
    }
  };
  appendRows(P);
  appendRows(Given);
  return Key;
}

std::string omega::snapshotCacheKey(const Problem &P,
                                    const std::vector<bool> &Keep) {
  // Exact serialization on purpose (like gist keys, unlike sat keys): an
  // adopted snapshot's reduced problem is replayed against the caller's
  // pair layout, so VarIds must line up column for column.
  std::string Key;
  Key.push_back('s');
  appendU32(Key, P.getNumVars());
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    Key.push_back(static_cast<char>((P.isProtected(V) ? 1 : 0) |
                                    (P.isDead(V) ? 2 : 0) |
                                    (V < static_cast<VarId>(Keep.size()) &&
                                             Keep[V]
                                         ? 4
                                         : 0)));
  appendU32(Key, P.getNumConstraints());
  for (const Constraint &Row : P.constraints()) {
    Key.push_back(Row.isEquality() ? 'E' : 'G');
    Key.push_back(Row.isRed() ? 'r' : 'b');
    appendI64(Key, Row.getConstant());
    for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
      appendI64(Key, Row.getCoeff(V));
  }
  return Key;
}
