//===- omega/QueryCache.cpp -----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/QueryCache.h"

#include "support/Hashing.h"

#include <algorithm>

using namespace omega;

//===----------------------------------------------------------------------===//
// Sharded store
//===----------------------------------------------------------------------===//

struct QueryCache::Shard {
  std::mutex M;
  std::unordered_map<std::string, bool> Sat;
  std::unordered_map<std::string, std::vector<Constraint>> Gist;
};

QueryCache::QueryCache(unsigned ShardCount) {
  if (ShardCount == 0)
    ShardCount = 1;
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

QueryCache::~QueryCache() = default;

QueryCache::Shard &QueryCache::shardFor(const std::string &Key) {
  return *Shards[std::hash<std::string>{}(Key) % Shards.size()];
}

std::optional<bool> QueryCache::lookupSat(const std::string &Key,
                                          OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Sat.find(Key);
  if (It == S.Sat.end()) {
    SatMisses.fetch_add(1, std::memory_order_relaxed);
    if (Stats)
      ++Stats->SatCacheMisses;
    return std::nullopt;
  }
  SatHits.fetch_add(1, std::memory_order_relaxed);
  if (Stats)
    ++Stats->SatCacheHits;
  return It->second;
}

void QueryCache::storeSat(const std::string &Key, bool Satisfiable) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Sat.emplace(Key, Satisfiable);
}

std::optional<std::vector<Constraint>>
QueryCache::lookupGist(const std::string &Key, OmegaStats *Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gist.find(Key);
  if (It == S.Gist.end()) {
    GistMisses.fetch_add(1, std::memory_order_relaxed);
    if (Stats)
      ++Stats->GistCacheMisses;
    return std::nullopt;
  }
  GistHits.fetch_add(1, std::memory_order_relaxed);
  if (Stats)
    ++Stats->GistCacheHits;
  return It->second;
}

void QueryCache::storeGist(const std::string &Key,
                           std::vector<Constraint> Rows) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Gist.emplace(Key, std::move(Rows));
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats R;
  R.SatHits = SatHits.load(std::memory_order_relaxed);
  R.SatMisses = SatMisses.load(std::memory_order_relaxed);
  R.GistHits = GistHits.load(std::memory_order_relaxed);
  R.GistMisses = GistMisses.load(std::memory_order_relaxed);
  return R;
}

std::size_t QueryCache::size() const {
  std::size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Sat.size() + S->Gist.size();
  }
  return N;
}

void QueryCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    S->Sat.clear();
    S->Gist.clear();
  }
}

//===----------------------------------------------------------------------===//
// Key construction
//===----------------------------------------------------------------------===//

namespace {

void appendI64(std::string &Out, int64_t V) {
  uint64_t U = static_cast<uint64_t>(V);
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((U >> (8 * I)) & 0xff));
}

void appendU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Serializes one row over an explicit column order (fixed width given the
/// column count, so sorted rows concatenate unambiguously).
std::string rowKey(const Constraint &Row, const std::vector<VarId> &Columns) {
  std::string Out;
  Out.reserve(9 + 8 * Columns.size());
  Out.push_back(Row.isEquality() ? 'E' : 'G');
  appendI64(Out, Row.getConstant());
  for (VarId V : Columns)
    appendI64(Out, Row.getCoeff(V));
  return Out;
}

} // namespace

std::optional<std::string> omega::canonicalSatKey(const Problem &P,
                                                  int ModeTag) {
  // Key construction must be free of observable side effects: save the
  // thread's sticky overflow flag and restore it exactly (an OverflowScope
  // would OR a canonicalization overflow back into the caller's view and
  // change the caller's conservative-fallback behavior depending on
  // whether a cache is attached).
  bool &Flag = arithOverflowFlag();
  bool Saved = Flag;
  Flag = false;

  Problem Q = P;
  Problem::NormalizeResult NR = Q.normalize();
  bool Overflowed = Flag;
  Flag = Saved;
  if (Overflowed)
    return std::nullopt;

  std::string Key;
  Key.push_back('S');
  Key.push_back(static_cast<char>(ModeTag));
  if (NR == Problem::NormalizeResult::False) {
    // Every trivially inconsistent system shares one key.
    Key.push_back('F');
    return Key;
  }

  // Live columns only: dead or mentioned-nowhere variables cannot affect
  // satisfiability, and protection is irrelevant to it.
  std::vector<VarId> Live;
  for (VarId V = 0, E = Q.getNumVars(); V != static_cast<VarId>(E); ++V)
    if (Q.involves(V))
      Live.push_back(V);

  // Structural signature per column, independent of row and column order:
  // a commutative accumulation (shared mix64 from support/Hashing.h) over
  // the rows the column appears in. One pass over the rows fills every
  // column's accumulator.
  std::vector<uint64_t> ColSig(Q.getNumVars(), 0);
  for (const Constraint &Row : Q.constraints()) {
    const uint64_t RowTag =
        static_cast<uint64_t>(Row.getConstant()) ^
        (Row.isEquality() ? 0x45ull : 0x47ull) * 0x9e3779b97f4a7c15ull;
    const int64_t *C = Row.coeffs().data();
    for (unsigned V = 0, E = Row.getNumVars(); V != E; ++V)
      if (C[V] != 0)
        ColSig[V] += mix64(mix64(static_cast<uint64_t>(C[V])) ^ RowTag);
  }
  struct ColOrder {
    uint64_t Sig;
    VarId V;
  };
  std::vector<ColOrder> Order;
  Order.reserve(Live.size());
  for (VarId V : Live)
    Order.push_back({ColSig[V], V});
  // Ties between structurally identical columns fall back to the original
  // index: deterministic, and at worst a cache miss for a permuted twin.
  std::sort(Order.begin(), Order.end(), [](const ColOrder &A, const ColOrder &B) {
    return A.Sig != B.Sig ? A.Sig < B.Sig : A.V < B.V;
  });
  std::vector<VarId> Columns;
  Columns.reserve(Order.size());
  for (const ColOrder &C : Order)
    Columns.push_back(C.V);

  appendU32(Key, static_cast<uint32_t>(Columns.size()));
  appendU32(Key, static_cast<uint32_t>(Q.getNumConstraints()));
  // Sort rows into a canonical order. The comparisons are prescreened by a
  // row hash over the canonical column positions -- the same
  // hashCoeffTerm scheme as Constraint's structural signature -- so only
  // hash-equal rows pay a byte-wise key comparison.
  struct RowOrder {
    uint64_t H;
    std::string K;
  };
  std::vector<RowOrder> Rows;
  Rows.reserve(Q.getNumConstraints());
  for (const Constraint &Row : Q.constraints()) {
    uint64_t H = mix64(static_cast<uint64_t>(Row.getConstant()) ^
                       (Row.isEquality() ? 0x45ull : 0x47ull));
    for (unsigned I = 0, E = Columns.size(); I != E; ++I) {
      int64_t C = Row.getCoeff(Columns[I]);
      if (C != 0)
        H += hashCoeffTerm(I, C);
    }
    Rows.push_back({H, rowKey(Row, Columns)});
  }
  std::sort(Rows.begin(), Rows.end(), [](const RowOrder &A, const RowOrder &B) {
    return A.H != B.H ? A.H < B.H : A.K < B.K;
  });
  for (const RowOrder &R : Rows)
    Key += R.K;
  return Key;
}

std::string omega::gistCacheKey(const Problem &P, const Problem &Given,
                                bool UseFastChecks) {
  assert(P.getNumVars() == Given.getNumVars() &&
         "gist arguments share one layout");
  std::string Key;
  Key.push_back('g');
  Key.push_back(UseFastChecks ? '1' : '0');
  appendU32(Key, P.getNumVars());
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    Key.push_back(static_cast<char>((P.isProtected(V) ? 1 : 0) |
                                    (P.isDead(V) ? 2 : 0)));
  auto appendRows = [&Key](const Problem &Q) {
    appendU32(Key, Q.getNumConstraints());
    for (const Constraint &Row : Q.constraints()) {
      Key.push_back(Row.isEquality() ? 'E' : 'G');
      Key.push_back(Row.isRed() ? 'r' : 'b');
      appendI64(Key, Row.getConstant());
      for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
        appendI64(Key, Row.getCoeff(V));
    }
  };
  appendRows(P);
  appendRows(Given);
  return Key;
}
