//===- omega/FourierMotzkin.h - Variable elimination with dark shadows ---===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inequality-elimination step of the Omega test (Section 3.1 of the
/// paper, detailed in [Pug91]). Eliminating a variable z from a conjunction
/// of inequalities produces:
///
///  * the *real shadow*: for each lower bound (b z >= beta) and upper bound
///    (a z <= alpha), the constraint (a beta <= b alpha) -- a conservative
///    over-approximation of the integer projection;
///  * the *dark shadow*: (a beta + (a-1)(b-1) <= b alpha) -- a pessimistic
///    under-approximation (any point of the dark shadow has an integer z);
///  * *splinters*: when real and dark differ, problems formed by adding
///    (b z == beta + i) for each lower bound and each
///    i in [0, (amax*b - amax - b)/amax], whose union with the dark shadow
///    is exactly the integer projection.
///
/// When every (lower, upper) pair has a unit coefficient the three coincide
/// and the elimination is exact.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_FOURIERMOTZKIN_H
#define OMEGA_OMEGA_FOURIERMOTZKIN_H

#include "omega/Problem.h"

#include <vector>

namespace omega {

/// Which parts of the elimination the caller will consume. Real-shadow-only
/// callers (approximate projection, SatMode::RealShadowOnly) skip the dark
/// shadow rows and the splinter problem copies entirely; the splinter
/// count/overflow bookkeeping still runs so the sticky saturation flag
/// behaves identically.
enum class FMParts : uint8_t { All, RealShadowOnly };

struct FMResult {
  /// Over-approximation of the integer projection (z eliminated).
  Problem RealShadow;
  /// Under-approximation (z eliminated). Materialized only when the
  /// elimination is inexact and FMParts::All was requested: when Exact the
  /// dark shadow equals RealShadow and is left empty.
  Problem DarkShadow;
  /// Residual problems still containing z, each with one added equality
  /// that makes z exactly eliminable. DarkShadow union the projections of
  /// the splinters is exactly the integer projection. Empty under
  /// FMParts::RealShadowOnly.
  std::vector<Problem> Splinters;
  /// True when real shadow == dark shadow == integer projection.
  bool Exact = false;
};

/// Eliminates \p Z (which must not appear in any equality) from \p P.
/// Constraints not involving Z are copied through; Z is marked dead in the
/// shadows. Red/black tags propagate: a combined row is red iff either
/// parent is red.
FMResult fourierMotzkinEliminate(const Problem &P, VarId Z,
                                 FMParts Parts = FMParts::All);

/// As above, but consumes \p P: the final splinter takes over P's storage
/// instead of copying it. Use when P is dead after the call.
FMResult fourierMotzkinEliminate(Problem &&P, VarId Z,
                                 FMParts Parts = FMParts::All);

/// Estimated cost of eliminating \p Z: an (exactness, work) pair used to
/// choose elimination order. Lower compares better.
struct FMCost {
  bool Inexact = false;       // prefer exact eliminations
  long ResultSize = 0;        // pairs produced minus rows removed
  long SplinterCount = 0;     // estimated splinter problems if inexact

  bool operator<(const FMCost &O) const {
    if (Inexact != O.Inexact)
      return !Inexact;
    if (Inexact && SplinterCount != O.SplinterCount)
      return SplinterCount < O.SplinterCount;
    return ResultSize < O.ResultSize;
  }
};

FMCost estimateEliminationCost(const Problem &P, VarId Z);

} // namespace omega

#endif // OMEGA_OMEGA_FOURIERMOTZKIN_H
