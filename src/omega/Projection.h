//===- omega/Projection.h - Exact integer projection ----------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projection is the basic operation of the extended Omega test (Section 3
/// of the paper): pi_{V}(S) is the set of constraints over the kept
/// variables V that has the same integer solutions for V as S. Because the
/// Omega test computes *integer* shadows, a projection may "splinter" into
/// a union of conjunctions: a dark shadow S0 plus residual pieces
/// S1..Sp, with the real shadow T as an over-approximation
/// (union S_i == pi(S) subseteq T).
///
/// Eliminated variables that survive only inside residual equalities (e.g.
/// strides: "exists w: x == 2w") are retained as unprotected wildcards;
/// this keeps the projection exact in the presence of non-unit
/// coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_PROJECTION_H
#define OMEGA_OMEGA_PROJECTION_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"

#include <vector>

namespace omega {

struct ProjectOptions {
  /// Remove constraints implied by the rest of each output piece (exact
  /// satisfiability-based redundancy elimination). Makes results canonical
  /// and readable; costs one satisfiability test per row.
  bool RemoveRedundant = true;
  /// Drop output pieces that have no integer solutions.
  bool DropEmptyPieces = true;
};

struct ProjectionResult {
  /// Exact disjunction: the union of the pieces is exactly the integer
  /// projection. Pieces may overlap. Eliminated variables are dead except
  /// for wildcards bound in residual stride equalities.
  std::vector<Problem> Pieces;
  /// Real-shadow-only over-approximation as a single conjunction.
  Problem Approx;
  /// True when no inexact elimination occurred, i.e. Approx is itself the
  /// exact projection (and Pieces has at most one element).
  bool ApproxIsExact = true;
  /// Coefficient overflow occurred: the pieces are NOT trustworthy and
  /// clients must fall back to their conservative path.
  bool Poisoned = false;

  bool isSinglePiece() const { return Pieces.size() == 1; }
  /// True when the projection is known to contain no integer points.
  bool isEmpty() const { return Pieces.empty(); }
};

/// Projects \p P onto the variables marked true in \p Keep (which must have
/// one entry per variable of \p P). Unprotected variables are always
/// eliminated regardless of the mask.
ProjectionResult
projectOntoMask(const Problem &P, const std::vector<bool> &Keep,
                const ProjectOptions &Opts = ProjectOptions(),
                OmegaContext &Ctx = OmegaContext::current());

/// Convenience wrapper: keeps exactly the listed variables.
ProjectionResult
projectOnto(const Problem &P, const std::vector<VarId> &Keep,
            const ProjectOptions &Opts = ProjectOptions(),
            OmegaContext &Ctx = OmegaContext::current());

/// Projects away a single variable (the paper's pi_{not x}).
ProjectionResult
projectAway(const Problem &P, VarId X,
            const ProjectOptions &Opts = ProjectOptions(),
            OmegaContext &Ctx = OmegaContext::current());

/// Removes constraints of \p P implied by the remaining ones (exact,
/// satisfiability-based). Inequalities only; equalities are kept.
void removeRedundantConstraints(Problem &P,
                                OmegaContext &Ctx = OmegaContext::current());

/// The inclusive integer range a variable can take; open ends are
/// represented by HasMin/HasMax == false.
struct IntRange {
  bool HasMin = false, HasMax = false;
  int64_t Min = 0, Max = 0;
  bool Empty = true; // no integer point at all

  void include(const IntRange &O);
  std::string toString() const;
};

/// Computes the range of \p V over the integer solutions of \p P by
/// projecting onto {V}.
IntRange computeVarRange(const Problem &P, VarId V,
                         OmegaContext &Ctx = OmegaContext::current());

/// Computes the range of \p V over a union of pieces.
IntRange computeVarRange(const std::vector<Problem> &Pieces, VarId V,
                         OmegaContext &Ctx = OmegaContext::current());

} // namespace omega

#endif // OMEGA_OMEGA_PROJECTION_H
