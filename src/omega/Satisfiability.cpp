//===- omega/Satisfiability.cpp -------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Satisfiability.h"

#include "obs/Trace.h"
#include "omega/EqElimination.h"
#include "omega/FourierMotzkin.h"
#include "omega/Projection.h"
#include "omega/QueryCache.h"

#include <limits>
#include <optional>

using namespace omega;

namespace {

/// Direct integer check when at most one variable remains: the tightest
/// integer lower bound must not exceed the tightest integer upper bound.
bool checkSingleVar(const Problem &P, VarId V) {
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
  for (const Constraint &Row : P.constraints()) {
    assert(Row.isInequality() && "equalities must be eliminated first");
    int64_t C = Row.getCoeff(V);
    int64_t K = Row.getConstant();
    if (C > 0) {
      // C*V + K >= 0  =>  V >= ceil(-K / C)
      int64_t Bound = ceilDiv(-K, C);
      if (!HasLo || Bound > Lo)
        Lo = Bound;
      HasLo = true;
    } else if (C < 0) {
      // C*V + K >= 0  =>  V <= floor(K / -C)
      int64_t Bound = floorDiv(K, -C);
      if (!HasHi || Bound < Hi)
        Hi = Bound;
      HasHi = true;
    }
  }
  return !HasLo || !HasHi || Lo <= Hi;
}

/// Returns the variable whose elimination looks cheapest, or -1 if no
/// variable appears in any constraint.
VarId chooseVariable(const Problem &P) {
  VarId Best = -1;
  FMCost BestCost;
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
    if (!P.involves(V))
      continue;
    FMCost Cost = estimateEliminationCost(P, V);
    if (Best < 0 || Cost < BestCost) {
      Best = V;
      BestCost = Cost;
    }
  }
  return Best;
}

unsigned countActiveVars(const Problem &P, VarId &OnlyVar) {
  unsigned N = 0;
  OnlyVar = -1;
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V)
    if (P.involves(V)) {
      ++N;
      OnlyVar = V;
    }
  return N;
}

bool isSatImpl(Problem &P, const SatOptions &Opts, OmegaContext &Ctx,
               unsigned Depth) {
  assert(Depth < 512 && "runaway Omega test recursion");

  // Once arithmetic has saturated this computation is unreliable; unwind
  // immediately (the wrapper reports the conservative answer).
  if (arithOverflowFlag())
    return true;

  if (solveEqualities(P, Ctx) == SolveResult::False)
    return false;
  // Satisfiability never reads VarIds back out, so every dead column
  // (mod-hat wildcards, eliminated variables) can be dropped: shorter rows
  // keep the splinter/shadow copies below on the inline path.
  P.compactDeadColumns();

  while (true) {
    if (arithOverflowFlag())
      return true;
    VarId OnlyVar;
    unsigned Active = countActiveVars(P, OnlyVar);
    if (Active == 0)
      return true; // normalize() removed all rows consistently
    if (Active == 1)
      return checkSingleVar(P, OnlyVar);

    VarId Z = chooseVariable(P);
    uint32_t SizeVars = static_cast<uint32_t>(P.getNumVars());
    uint32_t SizeRows = static_cast<uint32_t>(P.constraints().size());
    // P is dead after this call (reassigned or abandoned), so the last
    // splinter may take its storage; real-shadow-only mode skips the dark
    // shadow and splinter materialization it would never look at.
    FMResult R = [&] {
      obs::ScopedSpan FMSpan(Ctx.Trace, obs::SpanKind::FMEliminate, SizeVars,
                             SizeRows);
      return fourierMotzkinEliminate(std::move(P), Z,
                                     Opts.Mode == SatMode::RealShadowOnly
                                         ? FMParts::RealShadowOnly
                                         : FMParts::All);
    }();

    if (R.Exact || Opts.Mode == SatMode::RealShadowOnly) {
      ++Ctx.Stats.ExactEliminations;
      P = std::move(R.RealShadow);
      if (P.normalize() == Problem::NormalizeResult::False)
        return false;
      // normalize() may synthesize equalities from opposed inequalities.
      if (P.getNumEQs() != 0) {
        if (solveEqualities(P, Ctx) == SolveResult::False)
          return false;
        P.compactDeadColumns();
      }
      continue;
    }

    ++Ctx.Stats.InexactEliminations;
    if (!isSatImpl(R.RealShadow, Opts, Ctx, Depth + 1)) {
      ++Ctx.Stats.RealShadowDecided;
      if (Ctx.Trace)
        Ctx.Trace->decision("real-shadow: unsatisfiable", SizeVars, SizeRows);
      return false;
    }
    if (isSatImpl(R.DarkShadow, Opts, Ctx, Depth + 1)) {
      ++Ctx.Stats.DarkShadowDecided;
      if (Ctx.Trace)
        Ctx.Trace->decision("dark-shadow: satisfiable", SizeVars, SizeRows);
      return true;
    }
    for (Problem &Splinter : R.Splinters) {
      ++Ctx.Stats.SplintersExplored;
      obs::ScopedSpan SpSpan(Ctx.Trace, obs::SpanKind::Splinter,
                             static_cast<uint32_t>(Splinter.getNumVars()),
                             static_cast<uint32_t>(Splinter.constraints().size()));
      if (isSatImpl(Splinter, Opts, Ctx, Depth + 1))
        return true;
    }
    return false;
  }
}

} // namespace

bool omega::isSatisfiable(Problem P, const SatOptions &Opts,
                          OmegaContext &Ctx) {
  // Open the span before bumping the call counter so the span's own
  // delta includes this call (top-level spans must sum to the context
  // counters).
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::Sat,
                       static_cast<uint32_t>(P.getNumVars()),
                       static_cast<uint32_t>(P.constraints().size()));
  ++Ctx.Stats.SatisfiabilityCalls;

  QueryCache *Cache = Ctx.Cache;
  std::string Key;
  if (Cache) {
    if (std::optional<std::string> K =
            canonicalSatKey(P, static_cast<int>(Opts.Mode))) {
      Key = std::move(*K);
      if (std::optional<bool> Hit = Cache->lookupSat(Key, &Ctx.Stats)) {
        Span.cache(obs::CacheTag::Hit);
        return *Hit;
      }
      Span.cache(obs::CacheTag::Miss);
    } else {
      Cache = nullptr; // canonicalization saturated; don't memoize
    }
  }

  OverflowScope Scope;
  bool Result = isSatImpl(P, Opts, Ctx, 0);
  // Coefficient blowup: the computation is unreliable, so answer with the
  // conservative "maybe satisfiable" every client treats as the safe
  // direction (dependences assumed, implications unproven). Unreliable
  // answers are never memoized.
  if (Scope.overflowed())
    return true;
  if (Cache)
    Cache->storeSat(Key, Result);
  return Result;
}

/// Exact membership test: evaluates every row of \p P at \p Point using
/// wide intermediates, so it cannot itself saturate.
static bool satisfiesAllRows(const Problem &P,
                             const std::vector<int64_t> &Point) {
  for (const Constraint &Row : P.constraints()) {
    __int128 Sum = Row.getConstant();
    for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
      Sum += static_cast<__int128>(Row.getCoeff(V)) * Point[V];
    if (Row.isEquality() ? Sum != 0 : Sum < 0)
      return false;
  }
  return true;
}

std::optional<std::vector<int64_t>> omega::findSolution(const Problem &P,
                                                        OmegaContext &Ctx) {
  if (!isSatisfiable(P, SatOptions(), Ctx))
    return std::nullopt;

  Problem Work = P;
  std::vector<int64_t> Point(P.getNumVars(), 0);
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V) {
    if (!Work.involves(V))
      continue; // unconstrained given earlier pins: 0 works
    // The exact projected range of V; its closed endpoints are members,
    // so pinning one cannot lose satisfiability. Under coefficient
    // saturation both the range and the SAT verdict above are unreliable
    // (SAT is the conservative answer), so every candidate is re-checked
    // by pinning, and a refused candidate falls through to the next one
    // instead of asserting.
    IntRange R = computeVarRange(Work, V, Ctx);
    if (R.Empty)
      return std::nullopt; // saturation artifact; no trustworthy value

    auto TryPin = [&](int64_t Candidate) {
      Problem Pinned = Work;
      Pinned.addEQ({{V, 1}}, -Candidate);
      if (!isSatisfiable(Pinned, SatOptions(), Ctx))
        return false;
      Point[V] = Candidate;
      Work = std::move(Pinned);
      return true;
    };

    bool Found = false;
    if (R.HasMin)
      Found = TryPin(R.Min);
    if (!Found && R.HasMax)
      Found = TryPin(R.Max);
    if (!Found) {
      // Unbounded both ways, or an endpoint the re-check refused: probe
      // small magnitudes (a stride can make 0 a non-member, but some
      // small multiple is one).
      for (int64_t Probe = 0; Probe < 4096 && !Found; ++Probe) {
        for (int64_t Candidate : {Probe, -Probe}) {
          if (TryPin(Candidate)) {
            Found = true;
            break;
          }
        }
      }
    }
    if (!Found)
      return std::nullopt;
  }
  // Final gate: the point must satisfy every original row exactly. This
  // catches any saturation-induced conservative SAT upstream, so callers
  // can trust a returned witness unconditionally.
  if (!satisfiesAllRows(P, Point))
    return std::nullopt;
  return Point;
}
