//===- omega/Satisfiability.cpp -------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Satisfiability.h"

#include "omega/EqElimination.h"
#include "omega/FourierMotzkin.h"
#include "omega/OmegaStats.h"
#include "omega/Projection.h"

#include <limits>
#include <optional>

using namespace omega;

OmegaStats &omega::stats() {
  static OmegaStats S;
  return S;
}

namespace {

/// Direct integer check when at most one variable remains: the tightest
/// integer lower bound must not exceed the tightest integer upper bound.
bool checkSingleVar(const Problem &P, VarId V) {
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
  for (const Constraint &Row : P.constraints()) {
    assert(Row.isInequality() && "equalities must be eliminated first");
    int64_t C = Row.getCoeff(V);
    int64_t K = Row.getConstant();
    if (C > 0) {
      // C*V + K >= 0  =>  V >= ceil(-K / C)
      int64_t Bound = ceilDiv(-K, C);
      if (!HasLo || Bound > Lo)
        Lo = Bound;
      HasLo = true;
    } else if (C < 0) {
      // C*V + K >= 0  =>  V <= floor(K / -C)
      int64_t Bound = floorDiv(K, -C);
      if (!HasHi || Bound < Hi)
        Hi = Bound;
      HasHi = true;
    }
  }
  return !HasLo || !HasHi || Lo <= Hi;
}

/// Returns the variable whose elimination looks cheapest, or -1 if no
/// variable appears in any constraint.
VarId chooseVariable(const Problem &P) {
  VarId Best = -1;
  FMCost BestCost;
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
    if (!P.involves(V))
      continue;
    FMCost Cost = estimateEliminationCost(P, V);
    if (Best < 0 || Cost < BestCost) {
      Best = V;
      BestCost = Cost;
    }
  }
  return Best;
}

unsigned countActiveVars(const Problem &P, VarId &OnlyVar) {
  unsigned N = 0;
  OnlyVar = -1;
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V)
    if (P.involves(V)) {
      ++N;
      OnlyVar = V;
    }
  return N;
}

bool isSatImpl(Problem &P, const SatOptions &Opts, unsigned Depth) {
  assert(Depth < 512 && "runaway Omega test recursion");

  // Once arithmetic has saturated this computation is unreliable; unwind
  // immediately (the wrapper reports the conservative answer).
  if (arithOverflowFlag())
    return true;

  if (solveEqualities(P) == SolveResult::False)
    return false;

  while (true) {
    if (arithOverflowFlag())
      return true;
    VarId OnlyVar;
    unsigned Active = countActiveVars(P, OnlyVar);
    if (Active == 0)
      return true; // normalize() removed all rows consistently
    if (Active == 1)
      return checkSingleVar(P, OnlyVar);

    VarId Z = chooseVariable(P);
    FMResult R = fourierMotzkinEliminate(P, Z);

    if (R.Exact || Opts.Mode == SatMode::RealShadowOnly) {
      ++stats().ExactEliminations;
      P = std::move(R.RealShadow);
      if (P.normalize() == Problem::NormalizeResult::False)
        return false;
      // normalize() may synthesize equalities from opposed inequalities.
      if (P.getNumEQs() != 0 && solveEqualities(P) == SolveResult::False)
        return false;
      continue;
    }

    ++stats().InexactEliminations;
    if (!isSatImpl(R.RealShadow, Opts, Depth + 1)) {
      ++stats().RealShadowDecided;
      return false;
    }
    if (isSatImpl(R.DarkShadow, Opts, Depth + 1)) {
      ++stats().DarkShadowDecided;
      return true;
    }
    for (Problem &Splinter : R.Splinters) {
      ++stats().SplintersExplored;
      if (isSatImpl(Splinter, Opts, Depth + 1))
        return true;
    }
    return false;
  }
}

} // namespace

bool omega::isSatisfiable(Problem P, const SatOptions &Opts) {
  ++stats().SatisfiabilityCalls;
  OverflowScope Scope;
  bool Result = isSatImpl(P, Opts, 0);
  // Coefficient blowup: the computation is unreliable, so answer with the
  // conservative "maybe satisfiable" every client treats as the safe
  // direction (dependences assumed, implications unproven).
  if (Scope.overflowed())
    return true;
  return Result;
}

std::optional<std::vector<int64_t>> omega::findSolution(const Problem &P) {
  if (!isSatisfiable(P))
    return std::nullopt;

  Problem Work = P;
  std::vector<int64_t> Point(P.getNumVars(), 0);
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V) {
    if (!Work.involves(V))
      continue; // unconstrained given earlier pins: 0 works
    // The exact projected range of V; its closed endpoints are members,
    // so pinning one cannot lose satisfiability.
    IntRange R = computeVarRange(Work, V);
    assert(!R.Empty && "satisfiable problem has a value for every var");
    int64_t Value = 0;
    if (R.HasMin)
      Value = R.Min;
    else if (R.HasMax)
      Value = R.Max;
    else {
      // Unbounded both ways: probe small magnitudes (a stride can make 0
      // a non-member, but some small multiple is one).
      bool Found = false;
      for (int64_t Probe = 0; Probe < 4096 && !Found; ++Probe) {
        for (int64_t Candidate : {Probe, -Probe}) {
          Problem Pinned = Work;
          Pinned.addEQ({{V, 1}}, -Candidate);
          if (isSatisfiable(std::move(Pinned))) {
            Value = Candidate;
            Found = true;
            break;
          }
        }
      }
      assert(Found && "no small value in a doubly-unbounded exact range");
      if (!Found)
        return std::nullopt;
    }
    Point[V] = Value;
    Work.addEQ({{V, 1}}, -Value);
  }
  return Point;
}
