//===- omega/EqElimination.cpp --------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/EqElimination.h"

#include "obs/Trace.h"
#include "omega/OmegaContext.h"

#include <algorithm>

using namespace omega;

namespace {

/// Builds the definition row `x_Target := Def` (Def has a zero coefficient
/// for Target) from an equality `Row` in which Target has coefficient +/-1:
///   a_T x_T + sum a_i x_i + c == 0  with  a_T == s (s in {+1,-1})
///   =>  x_T == -s * (sum a_i x_i + c)
Constraint makeUnitDefinition(const Constraint &Row, VarId Target) {
  int64_t S = Row.getCoeff(Target);
  assert((S == 1 || S == -1) && "target coefficient must be a unit");
  Constraint Def(ConstraintKind::EQ, Row.getNumVars());
  for (VarId V = 0, E = Row.getNumVars(); V != E; ++V)
    if (V != Target)
      Def.setCoeff(V, checkedMul(-S, Row.getCoeff(V)));
  Def.setConstant(checkedMul(-S, Row.getConstant()));
  Def.setRed(Row.isRed());
  return Def;
}

/// Classifies one elimination step to perform, found by scanning the
/// equality rows.
struct Step {
  enum KindTy { None, Unit, ModHat } Kind = None;
  unsigned RowIdx = 0;
  VarId Var = -1;
};

Step findStep(const Problem &P,
              const std::function<bool(VarId)> &MayEliminate) {
  Step Fallback;
  const std::vector<Constraint> &Rows = P.constraints();
  for (unsigned I = 0, E = Rows.size(); I != E; ++I) {
    const Constraint &Row = Rows[I];
    if (!Row.isEquality())
      continue;

    VarId MinVar = -1;
    int64_t MinAbs = 0;
    bool AllEliminable = true;
    bool AnyVar = false;
    unsigned NumEliminable = 0;
    Step UnitStep;
    for (VarId V = 0, VE = P.getNumVars(); V != VE; ++V) {
      int64_t C = Row.getCoeff(V);
      if (C == 0)
        continue;
      AnyVar = true;
      if (!MayEliminate(V)) {
        AllEliminable = false;
        continue;
      }
      ++NumEliminable;
      int64_t A = absVal(C);
      if (A == 1 && UnitStep.Kind == Step::None)
        UnitStep = Step{Step::Unit, I, V};
      if (MinVar < 0 || A < MinAbs) {
        MinVar = V;
        MinAbs = A;
      }
    }
    // A unit-coefficient eliminable variable gives a direct substitution;
    // take it immediately.
    if (UnitStep.Kind == Step::Unit)
      return UnitStep;
    // Mod-hat can always make progress when the equality is entirely over
    // eliminable variables (choosing the smallest coefficient guarantees
    // termination [Pug91]). With at least two eliminable variables present
    // the substitution usually shrinks coefficients until a unit appears,
    // but when protected variables sit in the row that is NOT guaranteed:
    // the eliminable coefficients can cycle (stride wildcards tied to
    // protected distance variables alternate between, e.g., {2} and {2,6})
    // while each substitution multiplies the inequality coefficients. The
    // caller's loop stops once the arithmetic saturates, and saturated
    // systems are never trusted for an unsat verdict. Remember the first
    // such opportunity but keep scanning for a cheaper unit step.
    if (((AnyVar && AllEliminable) || NumEliminable >= 2) && MinVar >= 0 &&
        Fallback.Kind == Step::None)
      Fallback = Step{Step::ModHat, I, MinVar};
    // Equalities with exactly one non-unit eliminable variable among
    // protected ones are left as residual stride constraints; Projection
    // isolates them.
  }
  return Fallback;
}

} // namespace

SolveResult
omega::solveEqualities(Problem &P,
                       const std::function<bool(VarId)> &MayEliminate,
                       OmegaContext &Ctx) {
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::EqSolve,
                       static_cast<uint32_t>(P.getNumVars()),
                       static_cast<uint32_t>(P.constraints().size()));
  // A False verdict derived from saturated (clamped) rows is garbage; the
  // caller's overflow scope decides what to do with the sticky flag.
  if (P.normalize() == Problem::NormalizeResult::False)
    return arithOverflowFlag() ? SolveResult::Ok : SolveResult::False;

  unsigned Iterations = 0;
  while (true) {
    // Mod-hat over rows that mix eliminable and protected variables has no
    // termination guarantee (see findStep); diverging runs normally stop at
    // arithmetic saturation, but cap the iteration count too so a cycle
    // that never overflows cannot spin. Residual equalities are fine: every
    // caller tolerates them (stride isolation / InEq masking).
    if (++Iterations > 10000)
      return SolveResult::Ok;
    // Saturated arithmetic: stop making progress; callers consult the
    // sticky flag and fall back conservatively.
    if (arithOverflowFlag())
      return SolveResult::Ok;
    Step S = findStep(P, MayEliminate);
    if (S.Kind == Step::None)
      return SolveResult::Ok;

    // Work on a copy of the row: substitution rewrites the row list.
    Constraint Row = P.constraints()[S.RowIdx];

    if (S.Kind == Step::Unit) {
      // Remove the defining row, then substitute the definition everywhere.
      P.constraints().erase(P.constraints().begin() + S.RowIdx);
      P.substitute(S.Var, makeUnitDefinition(Row, S.Var));
    } else {
      // Mod-hat substitution [Pug91]: let k be the variable with the
      // smallest |a_k| and m = |a_k| + 1. With ahat = modHat(., m),
      // introduce a fresh wildcard Sigma such that
      //   x_k = sign(a_k) * (sum_{i != k} ahat(a_i) x_i + ahat(c) - m*Sigma).
      // Substituting (including into the defining equality, whose terms all
      // become divisible by m) shrinks the equality's coefficients; iterate.
      ++Ctx.Stats.ModHatSubstitutions;
      int64_t AK = Row.getCoeff(S.Var);
      int64_t M = checkedAdd(absVal(AK), 1);
      int64_t Sign = signOf(AK);

      VarId Sigma = P.addWildcard();
      Row.resizeVars(P.getNumVars());

      Constraint Def(ConstraintKind::EQ, P.getNumVars());
      for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
        if (V == S.Var || V == Sigma)
          continue;
        Def.setCoeff(V, checkedMul(Sign, modHat(Row.getCoeff(V), M)));
      }
      Def.setCoeff(Sigma, checkedMul(-Sign, M));
      Def.setConstant(checkedMul(Sign, modHat(Row.getConstant(), M)));
      Def.setRed(Row.isRed());

      P.substitute(S.Var, Def);
    }

    if (P.normalize() == Problem::NormalizeResult::False)
      return arithOverflowFlag() ? SolveResult::Ok : SolveResult::False;
  }
}

SolveResult omega::solveEqualities(Problem &P, OmegaContext &Ctx) {
  return solveEqualities(P, [](VarId) { return true; }, Ctx);
}
