//===- omega/OmegaContext.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/OmegaContext.h"

using namespace omega;

namespace {
thread_local OmegaContext *CurrentContext = nullptr;
} // namespace

OmegaContext &OmegaContext::defaultContext() {
  static OmegaContext Ctx;
  return Ctx;
}

OmegaContext &OmegaContext::current() {
  return CurrentContext ? *CurrentContext : defaultContext();
}

OmegaContextScope::OmegaContextScope(OmegaContext &Ctx)
    : Prev(CurrentContext) {
  CurrentContext = &Ctx;
}

OmegaContextScope::~OmegaContextScope() { CurrentContext = Prev; }
