//===- omega/Projection.cpp -----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Projection.h"

#include "obs/Trace.h"
#include "omega/EqElimination.h"
#include "omega/FourierMotzkin.h"
#include "omega/OmegaContext.h"
#include "omega/Satisfiability.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>

using namespace omega;

namespace {

/// Uses the pivot equality to zero variable \p V out of \p Row. For
/// inequalities the row is scaled by the positive factor |pivot coeff| so
/// the direction is preserved.
void clearVarWithPivot(Constraint &Row, const Constraint &Pivot, VarId V) {
  int64_t PC = Pivot.getCoeff(V);
  int64_t RC = Row.getCoeff(V);
  assert(PC != 0 && "pivot must involve the variable");
  if (RC == 0)
    return;
  // Row := |PC| * Row - sign(PC) * RC * Pivot.
  Row.scale(absVal(PC));
  Row.addScaled(Pivot, checkedMul(-signOf(PC), RC));
  if (Pivot.isRed())
    Row.setRed(true);
  assert(Row.getCoeff(V) == 0 && "pivot combination must cancel V");
}

/// Gaussian-style isolation of eliminable variables that remain in mixed
/// equalities after solveEqualities(): each such variable is confined to a
/// single frozen pivot equality and removed from every other row. The
/// pivot variable then represents an existential stride and is kept alive
/// as a wildcard.
void isolateResidualStrides(Problem &P,
                            const std::function<bool(VarId)> &MayEliminate,
                            std::vector<bool> &IsStrideVar) {
  std::vector<Constraint> &Rows = P.constraints();
  std::vector<bool> Frozen(Rows.size(), false);

  for (unsigned I = 0; I != Rows.size(); ++I) {
    if (!Rows[I].isEquality() || Frozen[I])
      continue;
    // Choose the eliminable, not-yet-pivoted variable with the smallest
    // coefficient magnitude.
    VarId Pivot = -1;
    int64_t PivotAbs = 0;
    for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
      int64_t C = Rows[I].getCoeff(V);
      if (C == 0 || !MayEliminate(V) || IsStrideVar[V])
        continue;
      if (Pivot < 0 || absVal(C) < PivotAbs) {
        Pivot = V;
        PivotAbs = absVal(C);
      }
    }
    if (Pivot < 0)
      continue;

    for (unsigned J = 0; J != Rows.size(); ++J)
      if (J != I && !Frozen[J])
        clearVarWithPivot(Rows[J], Rows[I], Pivot);
    Frozen[I] = true;
    IsStrideVar[Pivot] = true;
    P.setProtected(Pivot, false); // becomes an existential stride variable
  }
}

struct Projector {
  const std::function<bool(VarId)> MayEliminate;
  const ProjectOptions &Opts;
  OmegaContext &Ctx;
  /// Columns below this index are the caller's original variables; their
  /// VarIds must survive into the pieces. Columns at or above it are
  /// wildcards this projection minted and may be compacted once dead.
  const unsigned FirstTransient;
  std::vector<Problem> Pieces;
  bool SawInexact = false;

  Projector(std::function<bool(VarId)> MayEliminate,
            const ProjectOptions &Opts, OmegaContext &Ctx,
            unsigned FirstTransient)
      : MayEliminate(std::move(MayEliminate)), Opts(Opts), Ctx(Ctx),
        FirstTransient(FirstTransient) {}

  /// Finds an eliminable variable (not a stride residual) that still
  /// appears in some constraint, preferring cheap/exact eliminations.
  VarId chooseVariable(const Problem &P, const std::vector<bool> &IsStride) {
    VarId Best = -1;
    FMCost BestCost;
    for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
      if (!MayEliminate(V) || IsStride[V] || !P.involves(V))
        continue;
      FMCost Cost = estimateEliminationCost(P, V);
      if (Best < 0 || Cost < BestCost) {
        Best = V;
        BestCost = Cost;
      }
    }
    return Best;
  }

  /// Phase A of the elimination loop: run equality substitution, stride
  /// isolation, and normalization to a fixpoint, so that afterwards no
  /// eliminable non-stride variable appears in any equality. Returns false
  /// if the problem is detected unsatisfiable. normalize() can synthesize
  /// fresh equalities from opposed inequality pairs, which is why this
  /// must iterate.
  bool settleEqualities(Problem &P, std::vector<bool> &IsStride) {
    auto Eliminable = [&](VarId V) {
      return MayEliminate(V) &&
             (static_cast<unsigned>(V) >= IsStride.size() || !IsStride[V]);
    };
    [[maybe_unused]] unsigned Iterations = 0;
    while (true) {
      assert(++Iterations < 1000 && "equality settling failed to converge");
      if (solveEqualities(P, Eliminable, Ctx) == SolveResult::False)
        return false;
      IsStride.resize(P.getNumVars(), false);
      isolateResidualStrides(P, Eliminable, IsStride);
      if (P.normalize() == Problem::NormalizeResult::False)
        return false;
      // normalize() may have merged opposed inequalities into equalities
      // that mention eliminable variables; if so, go around again.
      bool Unsettled = false;
      for (const Constraint &Row : P.constraints()) {
        if (!Row.isEquality())
          continue;
        for (VarId V = 0, E = P.getNumVars(); V != E && !Unsettled; ++V)
          if (Row.involves(V) && Eliminable(V))
            Unsettled = true;
        if (Unsettled)
          break;
      }
      if (!Unsettled)
        return true;
    }
  }

  void run(Problem P, std::vector<bool> IsStride, unsigned Depth) {
    assert(Depth < 512 && "runaway projection recursion");
    // Strides already isolated in parent problems keep their status (the
    // IsStride vector travels into splinter copies).
    while (true) {
      if (arithOverflowFlag())
        return; // abandon the piece; the wrapper marks the result poisoned
      if (!settleEqualities(P, IsStride))
        return;
      compactTransients(P, IsStride);

      VarId Z = chooseVariable(P, IsStride);
      if (Z < 0) {
        finishPiece(std::move(P));
        return;
      }
      // Z appears only in inequalities now: settleEqualities() guarantees
      // no equality mentions an eliminable non-stride variable. P itself is
      // dead after the call (reassigned below), so the last splinter may
      // take its storage.
      FMResult R = fourierMotzkinEliminate(std::move(P), Z);
      if (R.Exact) {
        P = std::move(R.RealShadow);
        continue;
      }
      SawInexact = true;
      // Exact union: dark shadow plus the projections of the splinters.
      for (Problem &Splinter : R.Splinters) {
        ++Ctx.Stats.SplintersExplored;
        obs::ScopedSpan SpSpan(
            Ctx.Trace, obs::SpanKind::Splinter,
            static_cast<uint32_t>(Splinter.getNumVars()),
            static_cast<uint32_t>(Splinter.constraints().size()));
        run(std::move(Splinter), IsStride, Depth + 1);
      }
      P = std::move(R.DarkShadow);
    }
  }

  /// Drops dead wildcard columns accumulated by mod-hat elimination,
  /// renumbering the stride table alongside. Caller VarIds (all below
  /// FirstTransient) are untouched.
  void compactTransients(Problem &P, std::vector<bool> &IsStride) {
    std::vector<int> Remap;
    if (!P.compactDeadColumns(FirstTransient, &Remap))
      return;
    std::vector<bool> NewStride(P.getNumVars(), false);
    for (unsigned V = 0, E = Remap.size(); V != E; ++V)
      if (Remap[V] >= 0 && V < IsStride.size() && IsStride[V])
        NewStride[Remap[V]] = true;
    IsStride = std::move(NewStride);
  }

  void finishPiece(Problem P) {
    if (Opts.DropEmptyPieces && !isSatisfiable(P, SatOptions(), Ctx))
      return;
    if (Opts.RemoveRedundant)
      removeRedundantConstraints(P, Ctx);
    Pieces.push_back(std::move(P));
  }
};

/// Real-shadow-only projection: a single conjunction over-approximating the
/// integer projection (and equal to it when every step was exact).
Problem projectApprox(Problem P, const std::function<bool(VarId)> &MayEliminate,
                      bool &Exact, unsigned FirstTransient,
                      OmegaContext &Ctx) {
  Exact = true;
  std::vector<bool> IsStride(P.getNumVars(), false);
  auto Eliminable = [&](VarId V) {
    return MayEliminate(V) &&
           (static_cast<unsigned>(V) >= IsStride.size() || !IsStride[V]);
  };
  auto makeFalse = [&P]() {
    Problem F = P.cloneLayout();
    F.addGEQ({}, -1); // canonical "false": 0 >= 1
    return F;
  };

  // Equality fixpoint, then one real-shadow FM step, repeated. See
  // Projector::settleEqualities for why the inner loop must iterate.
  while (true) {
    if (arithOverflowFlag())
      return P; // unreliable; the wrapper marks the result poisoned
    [[maybe_unused]] unsigned Iterations = 0;
    while (true) {
      assert(++Iterations < 1000 && "equality settling failed to converge");
      if (solveEqualities(P, Eliminable, Ctx) == SolveResult::False)
        return makeFalse();
      IsStride.resize(P.getNumVars(), false);
      isolateResidualStrides(P, Eliminable, IsStride);
      if (P.normalize() == Problem::NormalizeResult::False)
        return makeFalse();
      bool Unsettled = false;
      for (const Constraint &Row : P.constraints()) {
        if (!Row.isEquality())
          continue;
        for (VarId V = 0, E = P.getNumVars(); V != E && !Unsettled; ++V)
          if (Row.involves(V) && Eliminable(V))
            Unsettled = true;
        if (Unsettled)
          break;
      }
      if (!Unsettled)
        break;
    }

    {
      std::vector<int> Remap;
      if (P.compactDeadColumns(FirstTransient, &Remap)) {
        std::vector<bool> NewStride(P.getNumVars(), false);
        for (unsigned V = 0, E = Remap.size(); V != E; ++V)
          if (Remap[V] >= 0 && V < IsStride.size() && IsStride[V])
            NewStride[Remap[V]] = true;
        IsStride = std::move(NewStride);
      }
    }

    VarId Z = -1;
    FMCost BestCost;
    for (VarId V = 0, E = P.getNumVars(); V != E; ++V) {
      if (!Eliminable(V) || !P.involves(V))
        continue;
      FMCost Cost = estimateEliminationCost(P, V);
      if (Z < 0 || Cost < BestCost) {
        Z = V;
        BestCost = Cost;
      }
    }
    if (Z < 0)
      return P;

    // Only the real shadow is consumed: skip the dark shadow rows and the
    // splinter problem copies.
    FMResult R = fourierMotzkinEliminate(P, Z, FMParts::RealShadowOnly);
    if (!R.Exact)
      Exact = false;
    P = std::move(R.RealShadow);
  }
}

} // namespace

ProjectionResult omega::projectOntoMask(const Problem &P,
                                        const std::vector<bool> &Keep,
                                        const ProjectOptions &Opts,
                                        OmegaContext &Ctx) {
  assert(Keep.size() == P.getNumVars() && "mask size mismatch");
  // Span first, counter second: the span's own delta must include this
  // call so top-level spans sum to the context counters.
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::Projection,
                       static_cast<uint32_t>(P.getNumVars()),
                       static_cast<uint32_t>(P.constraints().size()));
  ++Ctx.Stats.ProjectionCalls;
  // Snapshot the mask and protection bits: elimination mints fresh
  // wildcards beyond the original variable count, and those are always
  // eliminable.
  std::vector<bool> Protected(P.getNumVars());
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V)
    Protected[V] = P.isProtected(V);
  std::vector<bool> Mask = Keep;
  auto MayEliminate = [Mask, Protected](VarId V) {
    if (static_cast<unsigned>(V) >= Mask.size())
      return true;
    return !Mask[V] || !Protected[V];
  };

  ProjectionResult Result;
  OverflowScope Scope;
  Projector Proj(MayEliminate, Opts, Ctx, P.getNumVars());
  Proj.run(P, std::vector<bool>(P.getNumVars(), false), 0);
  Result.Pieces = std::move(Proj.Pieces);

  bool ApproxExact = true;
  Result.Approx =
      projectApprox(P, MayEliminate, ApproxExact, P.getNumVars(), Ctx);
  Result.ApproxIsExact = ApproxExact && !Proj.SawInexact;
  if (Opts.RemoveRedundant)
    removeRedundantConstraints(Result.Approx, Ctx);
  if (Scope.overflowed()) {
    Result.Poisoned = true;
    Result.ApproxIsExact = false;
  }
  return Result;
}

ProjectionResult omega::projectOnto(const Problem &P,
                                    const std::vector<VarId> &Keep,
                                    const ProjectOptions &Opts,
                                    OmegaContext &Ctx) {
  std::vector<bool> Mask(P.getNumVars(), false);
  for (VarId V : Keep)
    Mask[V] = true;
  return projectOntoMask(P, Mask, Opts, Ctx);
}

ProjectionResult omega::projectAway(const Problem &P, VarId X,
                                    const ProjectOptions &Opts,
                                    OmegaContext &Ctx) {
  std::vector<bool> Mask(P.getNumVars(), true);
  Mask[X] = false;
  return projectOntoMask(P, Mask, Opts, Ctx);
}

void omega::removeRedundantConstraints(Problem &P, OmegaContext &Ctx) {
  std::vector<Constraint> &Rows = P.constraints();
  for (unsigned I = 0; I < Rows.size();) {
    if (!Rows[I].isInequality()) {
      ++I;
      continue;
    }
    Problem Test = P.cloneLayout();
    for (unsigned J = 0; J != Rows.size(); ++J) {
      if (J == I)
        continue;
      Test.addConstraint(Rows[J]);
    }
    Constraint Neg = Rows[I];
    Neg.negateGEQ();
    Test.addConstraint(Neg);
    if (!isSatisfiable(std::move(Test), SatOptions(), Ctx))
      Rows.erase(Rows.begin() + I); // implied by the others
    else
      ++I;
  }
}

void IntRange::include(const IntRange &O) {
  if (O.Empty)
    return;
  if (Empty) {
    *this = O;
    return;
  }
  if (!O.HasMin)
    HasMin = false;
  else if (HasMin)
    Min = std::min(Min, O.Min);
  if (!O.HasMax)
    HasMax = false;
  else if (HasMax)
    Max = std::max(Max, O.Max);
}

std::string IntRange::toString() const {
  if (Empty)
    return "empty";
  std::string Lo = HasMin ? std::to_string(Min) : "-inf";
  std::string Hi = HasMax ? std::to_string(Max) : "+inf";
  return "[" + Lo + ", " + Hi + "]";
}

IntRange omega::computeVarRange(const Problem &P, VarId V,
                                OmegaContext &Ctx) {
  OverflowScope Scope;
  ProjectionResult R = projectOnto(P, {V}, ProjectOptions(), Ctx);
  IntRange Range = computeVarRange(R.Pieces, V, Ctx);
  if (R.Poisoned || Scope.overflowed()) {
    // Unreliable: the only sound range is the fully open one.
    Range.Empty = false;
    Range.HasMin = Range.HasMax = false;
  }
  return Range;
}

IntRange omega::computeVarRange(const std::vector<Problem> &Pieces, VarId V,
                                OmegaContext &Ctx) {
  IntRange Range;
  for (const Problem &P : Pieces) {
    IntRange Piece;
    Piece.Empty = false;
    // After projection onto {V} each row is over V alone, possibly plus
    // stride wildcards bound in residual equalities.
    bool HasStride = false;
    bool Pinned = false;
    for (const Constraint &Row : P.constraints()) {
      int64_t C = Row.getCoeff(V);
      if (C == 0)
        continue;
      if (Row.getNumActiveVars() != 1) {
        HasStride = true; // coupled with a stride wildcard
        continue;
      }
      int64_t K = Row.getConstant();
      if (Row.isEquality()) {
        // C*V + K == 0; normalize() guarantees divisibility was checked.
        int64_t Val = -K / C;
        Piece.HasMin = Piece.HasMax = true;
        Piece.Min = Piece.Max = Val;
        Pinned = true;
        break;
      }
      if (C > 0) {
        int64_t B = ceilDiv(-K, C);
        if (!Piece.HasMin || B > Piece.Min) {
          Piece.HasMin = true;
          Piece.Min = B;
        }
      } else {
        int64_t B = floorDiv(K, -C);
        if (!Piece.HasMax || B < Piece.Max) {
          Piece.HasMax = true;
          Piece.Max = B;
        }
      }
    }
    // When V is coupled to a stride, the boundary values derived from the
    // inequalities may miss the lattice; probe inward to the first value
    // the piece actually contains. Pieces are non-empty (the projection
    // drops empty ones), so the probes terminate within one stride period.
    if (HasStride && !Pinned) {
      auto contains = [&](int64_t Val) {
        Problem Test = P;
        Test.addEQ({{V, 1}}, -Val);
        return isSatisfiable(std::move(Test), SatOptions(), Ctx);
      };
      const int ProbeCap = 1 << 12;
      if (Piece.HasMin) {
        int Probes = 0;
        while (!contains(Piece.Min) && ++Probes < ProbeCap)
          ++Piece.Min;
        assert(Probes < ProbeCap && "stride period beyond probe cap");
      }
      if (Piece.HasMax) {
        int Probes = 0;
        while (!contains(Piece.Max) && ++Probes < ProbeCap)
          --Piece.Max;
        assert(Probes < ProbeCap && "stride period beyond probe cap");
      }
    }
    Range.include(Piece);
  }
  return Range;
}
