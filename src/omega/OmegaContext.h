//===- omega/OmegaContext.h - Execution context for the Omega core -------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An OmegaContext carries the per-computation state of the Omega core:
/// the statistics counters and an optional handle to a shared QueryCache
/// that memoizes satisfiability and gist answers. Every decision-procedure
/// entry point (isSatisfiable, projectOnto*, gist, ...) takes a context
/// parameter defaulted to the calling thread's *current* context, so
///
///  * single-threaded code can ignore contexts entirely (the default
///    context behaves exactly like the old global state), and
///  * concurrent analyses give each worker its own context -- stats never
///    bleed between threads, while a cache may be shared (the cache is the
///    only internally synchronized piece).
///
/// The thread-local current context is installed with OmegaContextScope;
/// without a scope, current() is the process-wide default context. The
/// engine's worker pool installs one scope per worker thread, which is how
/// deep call chains (refinement, kills, dep spaces) pick up the worker's
/// context without every intermediate function naming it.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_OMEGACONTEXT_H
#define OMEGA_OMEGA_OMEGACONTEXT_H

#include "omega/OmegaStats.h"

namespace omega {

class QueryCache;

namespace obs {
class TraceBuffer;
} // namespace obs

class OmegaContext {
public:
  /// Counters for this context's computations. Not synchronized: a context
  /// must only be used from one thread at a time.
  OmegaStats Stats;

  /// Optional memoization cache consulted by isSatisfiable() and gist().
  /// The cache itself is concurrency-safe and may be shared by several
  /// contexts; null disables memoization. Not owned.
  QueryCache *Cache = nullptr;

  /// Optional trace buffer recording spans for this context's queries
  /// (see obs/Trace.h). Null disables tracing: instrumented sites guard
  /// every record with an inlined null check, so the disabled path costs
  /// one branch and never allocates. Single-writer like Stats. Not owned.
  obs::TraceBuffer *Trace = nullptr;

  /// Ablation toggles for the incremental pair-solving layer (PR 4).
  /// PairSolver consults these, so the engine, the CLI flags and the calc
  /// directives all steer the same switch. Both tiers are sound and
  /// result-identical; the toggles exist for benchmarking and attribution.
  bool IncrementalSnapshots = true; ///< reuse per-pair elimination snapshots
  bool PairQuickTests = true;       ///< ZIV/GCD/bounds pre-filter per pair
  /// Share elimination snapshots across pair solvers through the cache
  /// (the serving stack's cross-request warmth; see QueryCache::
  /// lookupSnapshot). Only observable in counters and wall time: a cached
  /// snapshot is bit-identical to a rebuilt one.
  bool SnapshotSharing = true;

  OmegaContext() = default;
  explicit OmegaContext(QueryCache *Cache) : Cache(Cache) {}

  /// The process-wide default context, used by threads that never install
  /// a scope. Single-threaded legacy behavior: all counters land here.
  static OmegaContext &defaultContext();

  /// The calling thread's current context: the innermost active
  /// OmegaContextScope's context, or defaultContext() when none is active.
  static OmegaContext &current();
};

/// RAII installer: makes \p Ctx the calling thread's current context for
/// the scope's lifetime, restoring the previous one on destruction.
class OmegaContextScope {
public:
  explicit OmegaContextScope(OmegaContext &Ctx);
  ~OmegaContextScope();

  OmegaContextScope(const OmegaContextScope &) = delete;
  OmegaContextScope &operator=(const OmegaContextScope &) = delete;

private:
  OmegaContext *Prev;
};

} // namespace omega

#endif // OMEGA_OMEGA_OMEGACONTEXT_H
