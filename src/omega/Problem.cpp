//===- omega/Problem.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Problem.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>

using namespace omega;

VarId Problem::addVar(std::string Name, bool Protected) {
  Vars.push_back(VarInfo{std::move(Name), Protected});
  VarId V = static_cast<VarId>(Vars.size() - 1);
  for (Constraint &Row : Rows)
    Row.resizeVars(Vars.size());
  return V;
}

VarId Problem::addWildcard() {
  return addVar("__w" + std::to_string(NextWildcardId++), /*Protected=*/false);
}

bool Problem::involves(VarId V) const {
  for (const Constraint &Row : Rows)
    if (Row.involves(V))
      return true;
  return false;
}

Constraint &Problem::addRow(ConstraintKind Kind, bool Red) {
  Rows.emplace_back(Kind, Vars.size());
  Rows.back().setRed(Red);
  return Rows.back();
}

static void fillRow(Constraint &Row, const Term *Begin, const Term *End,
                    int64_t C) {
  for (const Term *T = Begin; T != End; ++T)
    Row.addToCoeff(T->first, T->second);
  Row.setConstant(C);
}

void Problem::addEQ(std::span<const Term> Terms, int64_t C, bool Red) {
  fillRow(addRow(ConstraintKind::EQ, Red), Terms.data(),
          Terms.data() + Terms.size(), C);
}

void Problem::addGEQ(std::span<const Term> Terms, int64_t C, bool Red) {
  fillRow(addRow(ConstraintKind::GEQ, Red), Terms.data(),
          Terms.data() + Terms.size(), C);
}

void Problem::addConstraint(const Constraint &Row) {
  assert(Row.getNumVars() == Vars.size() && "variable space mismatch");
  Rows.push_back(Row);
}

unsigned Problem::getNumEQs() const {
  unsigned N = 0;
  for (const Constraint &Row : Rows)
    if (Row.isEquality())
      ++N;
  return N;
}

unsigned Problem::getNumGEQs() const {
  unsigned N = 0;
  for (const Constraint &Row : Rows)
    if (Row.isInequality())
      ++N;
  return N;
}

bool Problem::hasRedConstraints() const {
  for (const Constraint &Row : Rows)
    if (Row.isRed())
      return true;
  return false;
}

Problem Problem::cloneLayout() const {
  Problem P(*this);
  P.Rows.clear();
  return P;
}

void Problem::substitute(VarId Target, const Constraint &Def) {
  assert(Def.getCoeff(Target) == 0 && "definition must not mention target");
  for (Constraint &Row : Rows) {
    int64_t C = Row.getCoeff(Target);
    if (C == 0)
      continue;
    Row.setCoeff(Target, 0);
    Row.addScaled(Def, C);
    // A definition derived from a red row injects red information into
    // everything it rewrites (Section 3.3.2's red/black bookkeeping).
    if (Def.isRed())
      Row.setRed(true);
  }
  markDead(Target);
}

namespace {

/// Accumulates all rows sharing one canonical coefficient vector. The
/// canonical orientation makes the leading non-zero coefficient positive;
/// rows with the opposite orientation become "Hi" (upper) bounds.
struct MergeBucket {
  bool HasEQ = false;
  int64_t EQConst = 0; // canonical-orientation equality constant
  bool EQRed = false;
  bool HasLo = false;
  int64_t LoConst = 0; // tightest constant of canonical-orientation GEQs
  bool LoRed = false;
  bool HasHi = false;
  int64_t HiConst = 0; // tightest constant of flipped-orientation GEQs
  bool HiRed = false;
  bool Contradiction = false;

  void addEQ(int64_t C, bool Red) {
    if (HasEQ && EQConst != C) {
      Contradiction = true;
      return;
    }
    if (HasEQ)
      EQRed = EQRed && Red;
    else {
      HasEQ = true;
      EQConst = C;
      EQRed = Red;
    }
  }

  static void addBound(bool &Has, int64_t &Const, bool &IsRed, int64_t C,
                       bool Red) {
    if (!Has || C < Const) {
      Has = true;
      Const = C;
      IsRed = Red;
    } else if (C == Const) {
      IsRed = IsRed && Red;
    }
  }
};

} // namespace

bool Problem::gcdReduceRows(std::vector<Constraint> &Reduced) {
  Reduced.reserve(Rows.size());
  for (Constraint &Row : Rows) {
    int64_t G = Row.coeffGCD();
    if (G == 0) {
      // Constant row: either trivially true or trivially false.
      if (Row.isEquality() ? Row.getConstant() != 0 : Row.getConstant() < 0)
        return false;
      continue;
    }
    if (G != 1) {
      if (Row.isEquality()) {
        if (Row.getConstant() % G != 0)
          return false;
        for (VarId V = 0, E = getNumVars(); V != E; ++V)
          Row.setCoeff(V, Row.getCoeff(V) / G);
        Row.setConstant(Row.getConstant() / G);
      } else {
        for (VarId V = 0, E = getNumVars(); V != E; ++V)
          Row.setCoeff(V, Row.getCoeff(V) / G);
        Row.setConstant(floorDiv(Row.getConstant(), G));
      }
    }
    Reduced.push_back(Row);
  }
  return true;
}

Problem::NormalizeResult Problem::normalize() {
#ifdef OMEGA_CHECK_NORMALIZE
  Problem Ref(*this);
  NormalizeResult RefResult = Ref.normalizeReference();
#endif
  NormalizeResult Result = normalizeHashed();
#ifdef OMEGA_CHECK_NORMALIZE
  assert(Result == RefResult && "hashed normalize diverged from reference");
  if (Result == NormalizeResult::Ok) {
    assert(Rows.size() == Ref.Rows.size() &&
           "hashed normalize emitted a different row count");
    for (unsigned I = 0, E = Rows.size(); I != E; ++I)
      assert(Rows[I].getKind() == Ref.Rows[I].getKind() &&
             Rows[I].isRed() == Ref.Rows[I].isRed() &&
             Rows[I].sameForm(Ref.Rows[I]) &&
             "hashed normalize emitted a different row");
  }
#endif
  return Result;
}

Problem::NormalizeResult Problem::normalizeHashed() {
  // Phase 1: per-row gcd reduction and trivial-row handling.
  std::vector<Constraint> Reduced;
  if (!gcdReduceRows(Reduced))
    return NormalizeResult::False;

  // Phase 2: merge rows with identical (up to sign) coefficient vectors,
  // bucketed by the rows' structural signatures. The signature hash is
  // already orientation-canonical, so one hash probe plus (on a hit) one
  // exact canonical compare against the bucket's representative replaces
  // the ordered map's O(vars * log rows) key comparisons. Distinct vectors
  // that collide on the 64-bit hash chain through Next.
  struct BucketEntry {
    unsigned RepIdx; // representative row in Reduced
    int RepSign;     // its orientation; RepSign * rep coeffs is canonical
    MergeBucket B;
  };
  std::vector<BucketEntry> Entries;
  Entries.reserve(Reduced.size());
  std::vector<int> Next; // hash-collision chain, -1 terminated
  std::unordered_map<uint64_t, unsigned> Index;
  Index.reserve(Reduced.size());

  const unsigned NumVars = getNumVars();
  auto canonicalEqual = [&](const Constraint &A, int SA, const Constraint &B,
                            int SB) {
    const int64_t *PA = A.coeffs().data(), *PB = B.coeffs().data();
    for (unsigned V = 0; V != NumVars; ++V)
      if (SA * PA[V] != SB * PB[V])
        return false;
    return true;
  };

  for (unsigned I = 0, E = Reduced.size(); I != E; ++I) {
    const Constraint &Row = Reduced[I];
    const RowSignature &Sig = Row.signature();
    int Sign = Sig.Orientation;
    assert(Sign != 0 && "constant rows were removed in phase 1");

    int Found = -1;
    auto [It, Inserted] =
        Index.try_emplace(Sig.Hash, static_cast<unsigned>(Entries.size()));
    if (!Inserted) {
      for (int Cur = static_cast<int>(It->second); Cur != -1;
           Cur = Next[Cur]) {
        const BucketEntry &BE = Entries[Cur];
        if (canonicalEqual(Row, Sign, Reduced[BE.RepIdx], BE.RepSign)) {
          Found = Cur;
          break;
        }
      }
      if (Found == -1) { // true hash collision: prepend a new chain entry
        Found = static_cast<int>(Entries.size());
        Entries.push_back({I, Sign, MergeBucket()});
        Next.push_back(static_cast<int>(It->second));
        It->second = static_cast<unsigned>(Found);
      }
    } else {
      Found = static_cast<int>(Entries.size());
      Entries.push_back({I, Sign, MergeBucket()});
      Next.push_back(-1);
    }

    MergeBucket &B = Entries[Found].B;
    if (Row.isEquality())
      B.addEQ(Sign > 0 ? Row.getConstant() : -Row.getConstant(), Row.isRed());
    else if (Sign > 0)
      MergeBucket::addBound(B.HasLo, B.LoConst, B.LoRed, Row.getConstant(),
                            Row.isRed());
    else
      MergeBucket::addBound(B.HasHi, B.HiConst, B.HiRed, Row.getConstant(),
                            Row.isRed());
  }

  // Phase 3: rebuild the row list from the merged buckets, in the same
  // order the reference's ordered map iterates: canonical coefficient
  // vectors ascending lexicographically. Canonical vectors are unique
  // across buckets, so the sort order is total and deterministic.
  std::vector<unsigned> Order(Entries.size());
  for (unsigned I = 0, E = Order.size(); I != E; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](unsigned X, unsigned Y) {
    const BucketEntry &EX = Entries[X], &EY = Entries[Y];
    const int64_t *PX = Reduced[EX.RepIdx].coeffs().data();
    const int64_t *PY = Reduced[EY.RepIdx].coeffs().data();
    for (unsigned V = 0; V != NumVars; ++V) {
      int64_t A = EX.RepSign * PX[V], B = EY.RepSign * PY[V];
      if (A != B)
        return A < B;
    }
    return false;
  });

  Rows.clear();
  for (unsigned EI : Order) {
    const BucketEntry &BE = Entries[EI];
    const MergeBucket &B = BE.B;
    if (B.Contradiction)
      return NormalizeResult::False;

    auto emit = [&](ConstraintKind Kind, int Sign, int64_t C, bool Red) {
      Constraint &Row = addRow(Kind, Red);
      int64_t Mult = Sign * BE.RepSign; // overall sign vs the representative
      const int64_t *Src = Reduced[BE.RepIdx].coeffs().data();
      int64_t *Dst = Row.Coeffs.data();
      for (unsigned V = 0; V != NumVars; ++V)
        Dst[V] = Mult * Src[V];
      Row.SigValid = false;
      Row.setConstant(C);
    };

    if (B.HasEQ) {
      // The equality pins u.x == -EQConst; bounds are either implied or
      // contradictory.
      if (B.HasLo && B.LoConst < B.EQConst)
        return NormalizeResult::False;
      if (B.HasHi && B.HiConst < -B.EQConst)
        return NormalizeResult::False;
      emit(ConstraintKind::EQ, +1, B.EQConst, B.EQRed);
      continue;
    }
    if (B.HasLo && B.HasHi) {
      // -LoConst <= u.x <= HiConst.
      if (checkedAdd(B.LoConst, B.HiConst) < 0)
        return NormalizeResult::False;
      if (checkedAdd(B.LoConst, B.HiConst) == 0) {
        emit(ConstraintKind::EQ, +1, B.LoConst, B.LoRed || B.HiRed);
        continue;
      }
    }
    if (B.HasLo)
      emit(ConstraintKind::GEQ, +1, B.LoConst, B.LoRed);
    if (B.HasHi)
      emit(ConstraintKind::GEQ, -1, B.HiConst, B.HiRed);
  }
  return NormalizeResult::Ok;
}

Problem::NormalizeResult Problem::normalizeReference() {
  // Phase 1: per-row gcd reduction and trivial-row handling.
  std::vector<Constraint> Reduced;
  if (!gcdReduceRows(Reduced))
    return NormalizeResult::False;

  // Phase 2: merge rows with identical (up to sign) coefficient vectors.
  std::map<std::vector<int64_t>, MergeBucket> Buckets;
  for (const Constraint &Row : Reduced) {
    // Canonical orientation: leading non-zero coefficient positive.
    int Sign = 0;
    for (int64_t C : Row.coeffs())
      if (C != 0) {
        Sign = signOf(C);
        break;
      }
    assert(Sign != 0 && "constant rows were removed in phase 1");

    std::vector<int64_t> Key(Row.coeffs().begin(), Row.coeffs().end());
    if (Sign < 0)
      for (int64_t &C : Key)
        C = -C;

    MergeBucket &B = Buckets[std::move(Key)];
    if (Row.isEquality())
      B.addEQ(Sign > 0 ? Row.getConstant() : -Row.getConstant(), Row.isRed());
    else if (Sign > 0)
      MergeBucket::addBound(B.HasLo, B.LoConst, B.LoRed, Row.getConstant(),
                            Row.isRed());
    else
      MergeBucket::addBound(B.HasHi, B.HiConst, B.HiRed, Row.getConstant(),
                            Row.isRed());
  }

  // Phase 3: rebuild the row list from the merged buckets.
  Rows.clear();
  for (const auto &[Coeffs, B] : Buckets) {
    if (B.Contradiction)
      return NormalizeResult::False;

    auto emit = [&](ConstraintKind Kind, int Sign, int64_t C, bool Red) {
      Constraint &Row = addRow(Kind, Red);
      for (VarId V = 0, E = getNumVars(); V != E; ++V)
        Row.setCoeff(V, Sign > 0 ? Coeffs[V] : -Coeffs[V]);
      Row.setConstant(C);
    };

    if (B.HasEQ) {
      // The equality pins u.x == -EQConst; bounds are either implied or
      // contradictory.
      if (B.HasLo && B.LoConst < B.EQConst)
        return NormalizeResult::False;
      if (B.HasHi && B.HiConst < -B.EQConst)
        return NormalizeResult::False;
      emit(ConstraintKind::EQ, +1, B.EQConst, B.EQRed);
      continue;
    }
    if (B.HasLo && B.HasHi) {
      // -LoConst <= u.x <= HiConst.
      if (checkedAdd(B.LoConst, B.HiConst) < 0)
        return NormalizeResult::False;
      if (checkedAdd(B.LoConst, B.HiConst) == 0) {
        emit(ConstraintKind::EQ, +1, B.LoConst, B.LoRed || B.HiRed);
        continue;
      }
    }
    if (B.HasLo)
      emit(ConstraintKind::GEQ, +1, B.LoConst, B.LoRed);
    if (B.HasHi)
      emit(ConstraintKind::GEQ, -1, B.HiConst, B.HiRed);
  }
  return NormalizeResult::Ok;
}

unsigned Problem::compactDeadColumns(unsigned KeepBelow,
                                     std::vector<int> *RemapOut) {
  const unsigned N = Vars.size();
  std::vector<int> Remap(N);
  unsigned NewN = 0;
  bool Any = false;
  for (unsigned V = 0; V != N; ++V) {
    if (V >= KeepBelow && Vars[V].Dead && !involves(static_cast<VarId>(V))) {
      Remap[V] = -1;
      Any = true;
    } else {
      Remap[V] = static_cast<int>(NewN++);
    }
  }
  if (RemapOut)
    *RemapOut = Remap;
  if (!Any)
    return 0;

  for (Constraint &Row : Rows) {
    SmallCoeffVector NewCoeffs(NewN);
    const int64_t *Src = Row.Coeffs.data();
    int64_t *Dst = NewCoeffs.data();
    for (unsigned V = 0; V != N; ++V)
      if (Remap[V] >= 0)
        Dst[Remap[V]] = Src[V];
    Row.Coeffs = std::move(NewCoeffs);
    Row.SigValid = false; // surviving columns shifted position
  }

  std::vector<VarInfo> NewVars;
  NewVars.reserve(NewN);
  for (unsigned V = 0; V != N; ++V)
    if (Remap[V] >= 0)
      NewVars.push_back(std::move(Vars[V]));
  Vars = std::move(NewVars);
  return N - NewN;
}

std::string Problem::constraintToString(const Constraint &Row) const {
  std::string LHS;
  for (VarId V = 0, E = getNumVars(); V != E; ++V) {
    int64_t C = Row.getCoeff(V);
    if (C == 0)
      continue;
    if (LHS.empty()) {
      if (C == -1)
        LHS += "-";
      else if (C != 1)
        LHS += std::to_string(C) + "*";
    } else {
      LHS += C < 0 ? " - " : " + ";
      if (C != 1 && C != -1)
        LHS += std::to_string(absVal(C)) + "*";
    }
    LHS += getVarName(V);
  }
  if (LHS.empty())
    LHS = "0";
  int64_t RHS = -Row.getConstant();
  std::string Out = LHS + (Row.isEquality() ? " = " : " >= ") +
                    std::to_string(RHS);
  if (Row.isRed())
    Out = "[red] " + Out;
  return Out;
}

std::string Problem::toString() const {
  std::string Out = "{";
  bool First = true;
  for (const Constraint &Row : Rows) {
    Out += First ? " " : "; ";
    First = false;
    Out += constraintToString(Row);
  }
  Out += Rows.empty() ? " TRUE }" : " }";
  return Out;
}
