//===- omega/Problem.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Problem.h"

#include <limits>
#include <map>
#include <string>

using namespace omega;

VarId Problem::addVar(std::string Name, bool Protected) {
  Vars.push_back(VarInfo{std::move(Name), Protected});
  VarId V = static_cast<VarId>(Vars.size() - 1);
  for (Constraint &Row : Rows)
    Row.resizeVars(Vars.size());
  return V;
}

VarId Problem::addWildcard() {
  return addVar("__w" + std::to_string(NextWildcardId++), /*Protected=*/false);
}

bool Problem::involves(VarId V) const {
  for (const Constraint &Row : Rows)
    if (Row.involves(V))
      return true;
  return false;
}

Constraint &Problem::addRow(ConstraintKind Kind, bool Red) {
  Rows.emplace_back(Kind, Vars.size());
  Rows.back().setRed(Red);
  return Rows.back();
}

static void fillRow(Constraint &Row, const Term *Begin, const Term *End,
                    int64_t C) {
  for (const Term *T = Begin; T != End; ++T)
    Row.addToCoeff(T->first, T->second);
  Row.setConstant(C);
}

void Problem::addEQ(std::span<const Term> Terms, int64_t C, bool Red) {
  fillRow(addRow(ConstraintKind::EQ, Red), Terms.data(),
          Terms.data() + Terms.size(), C);
}

void Problem::addGEQ(std::span<const Term> Terms, int64_t C, bool Red) {
  fillRow(addRow(ConstraintKind::GEQ, Red), Terms.data(),
          Terms.data() + Terms.size(), C);
}

void Problem::addConstraint(const Constraint &Row) {
  assert(Row.getNumVars() == Vars.size() && "variable space mismatch");
  Rows.push_back(Row);
}

unsigned Problem::getNumEQs() const {
  unsigned N = 0;
  for (const Constraint &Row : Rows)
    if (Row.isEquality())
      ++N;
  return N;
}

unsigned Problem::getNumGEQs() const {
  unsigned N = 0;
  for (const Constraint &Row : Rows)
    if (Row.isInequality())
      ++N;
  return N;
}

bool Problem::hasRedConstraints() const {
  for (const Constraint &Row : Rows)
    if (Row.isRed())
      return true;
  return false;
}

Problem Problem::cloneLayout() const {
  Problem P(*this);
  P.Rows.clear();
  return P;
}

void Problem::substitute(VarId Target, const Constraint &Def) {
  assert(Def.getCoeff(Target) == 0 && "definition must not mention target");
  for (Constraint &Row : Rows) {
    int64_t C = Row.getCoeff(Target);
    if (C == 0)
      continue;
    Row.setCoeff(Target, 0);
    Row.addScaled(Def, C);
    // A definition derived from a red row injects red information into
    // everything it rewrites (Section 3.3.2's red/black bookkeeping).
    if (Def.isRed())
      Row.setRed(true);
  }
  markDead(Target);
}

namespace {

/// Accumulates all rows sharing one canonical coefficient vector. The
/// canonical orientation makes the leading non-zero coefficient positive;
/// rows with the opposite orientation become "Hi" (upper) bounds.
struct MergeBucket {
  bool HasEQ = false;
  int64_t EQConst = 0; // canonical-orientation equality constant
  bool EQRed = false;
  bool HasLo = false;
  int64_t LoConst = 0; // tightest constant of canonical-orientation GEQs
  bool LoRed = false;
  bool HasHi = false;
  int64_t HiConst = 0; // tightest constant of flipped-orientation GEQs
  bool HiRed = false;
  bool Contradiction = false;

  void addEQ(int64_t C, bool Red) {
    if (HasEQ && EQConst != C) {
      Contradiction = true;
      return;
    }
    if (HasEQ)
      EQRed = EQRed && Red;
    else {
      HasEQ = true;
      EQConst = C;
      EQRed = Red;
    }
  }

  static void addBound(bool &Has, int64_t &Const, bool &IsRed, int64_t C,
                       bool Red) {
    if (!Has || C < Const) {
      Has = true;
      Const = C;
      IsRed = Red;
    } else if (C == Const) {
      IsRed = IsRed && Red;
    }
  }
};

} // namespace

Problem::NormalizeResult Problem::normalize() {
  // Phase 1: per-row gcd reduction and trivial-row handling.
  std::vector<Constraint> Reduced;
  Reduced.reserve(Rows.size());
  for (Constraint &Row : Rows) {
    int64_t G = Row.coeffGCD();
    if (G == 0) {
      // Constant row: either trivially true or trivially false.
      if (Row.isEquality() ? Row.getConstant() != 0 : Row.getConstant() < 0)
        return NormalizeResult::False;
      continue;
    }
    if (G != 1) {
      if (Row.isEquality()) {
        if (Row.getConstant() % G != 0)
          return NormalizeResult::False;
        for (VarId V = 0, E = getNumVars(); V != E; ++V)
          Row.setCoeff(V, Row.getCoeff(V) / G);
        Row.setConstant(Row.getConstant() / G);
      } else {
        for (VarId V = 0, E = getNumVars(); V != E; ++V)
          Row.setCoeff(V, Row.getCoeff(V) / G);
        Row.setConstant(floorDiv(Row.getConstant(), G));
      }
    }
    Reduced.push_back(Row);
  }

  // Phase 2: merge rows with identical (up to sign) coefficient vectors.
  std::map<std::vector<int64_t>, MergeBucket> Buckets;
  for (const Constraint &Row : Reduced) {
    // Canonical orientation: leading non-zero coefficient positive.
    int Sign = 0;
    for (int64_t C : Row.coeffs())
      if (C != 0) {
        Sign = signOf(C);
        break;
      }
    assert(Sign != 0 && "constant rows were removed in phase 1");

    std::vector<int64_t> Key = Row.coeffs();
    if (Sign < 0)
      for (int64_t &C : Key)
        C = -C;

    MergeBucket &B = Buckets[std::move(Key)];
    if (Row.isEquality())
      B.addEQ(Sign > 0 ? Row.getConstant() : -Row.getConstant(), Row.isRed());
    else if (Sign > 0)
      MergeBucket::addBound(B.HasLo, B.LoConst, B.LoRed, Row.getConstant(),
                            Row.isRed());
    else
      MergeBucket::addBound(B.HasHi, B.HiConst, B.HiRed, Row.getConstant(),
                            Row.isRed());
  }

  // Phase 3: rebuild the row list from the merged buckets.
  Rows.clear();
  for (const auto &[Coeffs, B] : Buckets) {
    if (B.Contradiction)
      return NormalizeResult::False;

    auto emit = [&](ConstraintKind Kind, int Sign, int64_t C, bool Red) {
      Constraint &Row = addRow(Kind, Red);
      for (VarId V = 0, E = getNumVars(); V != E; ++V)
        Row.setCoeff(V, Sign > 0 ? Coeffs[V] : -Coeffs[V]);
      Row.setConstant(C);
    };

    if (B.HasEQ) {
      // The equality pins u.x == -EQConst; bounds are either implied or
      // contradictory.
      if (B.HasLo && B.LoConst < B.EQConst)
        return NormalizeResult::False;
      if (B.HasHi && B.HiConst < -B.EQConst)
        return NormalizeResult::False;
      emit(ConstraintKind::EQ, +1, B.EQConst, B.EQRed);
      continue;
    }
    if (B.HasLo && B.HasHi) {
      // -LoConst <= u.x <= HiConst.
      if (checkedAdd(B.LoConst, B.HiConst) < 0)
        return NormalizeResult::False;
      if (checkedAdd(B.LoConst, B.HiConst) == 0) {
        emit(ConstraintKind::EQ, +1, B.LoConst, B.LoRed || B.HiRed);
        continue;
      }
    }
    if (B.HasLo)
      emit(ConstraintKind::GEQ, +1, B.LoConst, B.LoRed);
    if (B.HasHi)
      emit(ConstraintKind::GEQ, -1, B.HiConst, B.HiRed);
  }
  return NormalizeResult::Ok;
}

std::string Problem::constraintToString(const Constraint &Row) const {
  std::string LHS;
  for (VarId V = 0, E = getNumVars(); V != E; ++V) {
    int64_t C = Row.getCoeff(V);
    if (C == 0)
      continue;
    if (LHS.empty()) {
      if (C == -1)
        LHS += "-";
      else if (C != 1)
        LHS += std::to_string(C) + "*";
    } else {
      LHS += C < 0 ? " - " : " + ";
      if (C != 1 && C != -1)
        LHS += std::to_string(absVal(C)) + "*";
    }
    LHS += getVarName(V);
  }
  if (LHS.empty())
    LHS = "0";
  int64_t RHS = -Row.getConstant();
  std::string Out = LHS + (Row.isEquality() ? " = " : " >= ") +
                    std::to_string(RHS);
  if (Row.isRed())
    Out = "[red] " + Out;
  return Out;
}

std::string Problem::toString() const {
  std::string Out = "{";
  bool First = true;
  for (const Constraint &Row : Rows) {
    Out += First ? " " : "; ";
    First = false;
    Out += constraintToString(Row);
  }
  Out += Rows.empty() ? " TRUE }" : " }";
  return Out;
}
