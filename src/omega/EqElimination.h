//===- omega/EqElimination.h - Remove equalities by substitution ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equality elimination from the Omega test [Pug91]. Each equality that
/// mentions an eliminable variable is removed by back-substitution: directly
/// when some eliminable variable has a unit coefficient, and otherwise via
/// the "mod-hat" substitution, which introduces a fresh wildcard and
/// strictly shrinks coefficients until a unit coefficient appears.
/// Equalities that mention no eliminable variable are left in place.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_EQELIMINATION_H
#define OMEGA_OMEGA_EQELIMINATION_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"

#include <functional>

namespace omega {

enum class SolveResult { Ok, False };

/// Repeatedly removes equalities that involve at least one variable for
/// which \p MayEliminate returns true. The problem is normalized on entry
/// and after each substitution. Returns SolveResult::False if the system is
/// detected to be unsatisfiable along the way.
///
/// On success every remaining equality involves only non-eliminable
/// variables.
SolveResult solveEqualities(Problem &P,
                            const std::function<bool(VarId)> &MayEliminate,
                            OmegaContext &Ctx = OmegaContext::current());

/// Convenience overload: every variable may be eliminated (used by the
/// satisfiability test, where no variable needs to survive).
SolveResult solveEqualities(Problem &P,
                            OmegaContext &Ctx = OmegaContext::current());

} // namespace omega

#endif // OMEGA_OMEGA_EQELIMINATION_H
