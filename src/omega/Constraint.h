//===- omega/Constraint.h - Linear equality/inequality rows --------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Constraint is a single row of a Problem: an integer linear equality
/// (sum a_i x_i + c == 0) or inequality (sum a_i x_i + c >= 0) over the
/// owning Problem's variable space. Constraints carry a red/black tag used
/// by the combined projection+gist computation of Section 3.3.2 of the
/// paper ("red" rows are the new information p, "black" rows the context q).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_CONSTRAINT_H
#define OMEGA_OMEGA_CONSTRAINT_H

#include "support/MathUtils.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace omega {

/// Index of a variable within its owning Problem.
using VarId = int;

/// Whether a constraint row is an equality or a (>= 0) inequality.
enum class ConstraintKind : uint8_t { EQ, GEQ };

class Constraint {
public:
  Constraint(ConstraintKind Kind, unsigned NumVars)
      : Coeffs(NumVars, 0), Kind(Kind) {}

  ConstraintKind getKind() const { return Kind; }
  void setKind(ConstraintKind K) { Kind = K; }
  bool isEquality() const { return Kind == ConstraintKind::EQ; }
  bool isInequality() const { return Kind == ConstraintKind::GEQ; }

  unsigned getNumVars() const { return Coeffs.size(); }
  void resizeVars(unsigned NumVars) { Coeffs.resize(NumVars, 0); }

  int64_t getCoeff(VarId V) const {
    assert(V >= 0 && static_cast<unsigned>(V) < Coeffs.size());
    return Coeffs[V];
  }
  void setCoeff(VarId V, int64_t C) {
    assert(V >= 0 && static_cast<unsigned>(V) < Coeffs.size());
    Coeffs[V] = C;
  }
  void addToCoeff(VarId V, int64_t C) { setCoeff(V, checkedAdd(getCoeff(V), C)); }

  int64_t getConstant() const { return Constant; }
  void setConstant(int64_t C) { Constant = C; }
  void addToConstant(int64_t C) { Constant = checkedAdd(Constant, C); }

  bool isRed() const { return Red; }
  void setRed(bool R) { Red = R; }

  /// Returns true if variable \p V appears with a non-zero coefficient.
  bool involves(VarId V) const { return getCoeff(V) != 0; }

  /// Returns true if every variable coefficient is zero.
  bool isConstantRow() const {
    for (int64_t C : Coeffs)
      if (C != 0)
        return false;
    return true;
  }

  /// Returns the number of variables with non-zero coefficients.
  unsigned getNumActiveVars() const {
    unsigned N = 0;
    for (int64_t C : Coeffs)
      if (C != 0)
        ++N;
    return N;
  }

  /// Adds \p Scale times \p Other into this row (affine form included).
  /// Both rows must live in the same variable space.
  void addScaled(const Constraint &Other, int64_t Scale) {
    assert(Other.Coeffs.size() == Coeffs.size() && "variable space mismatch");
    for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
      Coeffs[I] = checkedAdd(Coeffs[I], checkedMul(Scale, Other.Coeffs[I]));
    Constant = checkedAdd(Constant, checkedMul(Scale, Other.Constant));
  }

  /// Multiplies the whole row (coefficients and constant) by \p Scale.
  void scale(int64_t Scale) {
    for (int64_t &C : Coeffs)
      C = checkedMul(C, Scale);
    Constant = checkedMul(Constant, Scale);
  }

  /// Negates the affine form. For a GEQ this yields the form of the negated
  /// half-space *before* the strictness adjustment; use negateGEQ() for the
  /// logical negation of an inequality.
  void negateForm() { scale(-1); }

  /// Replaces an inequality (f >= 0) with its logical negation
  /// (f <= -1, i.e. -f - 1 >= 0). Only valid on inequalities.
  void negateGEQ() {
    assert(isInequality() && "negateGEQ on equality");
    negateForm();
    Constant = checkedSub(Constant, 1);
  }

  /// GCD of all variable coefficients (0 for a constant row).
  int64_t coeffGCD() const {
    int64_t G = 0;
    for (int64_t C : Coeffs)
      G = gcd64(G, C);
    return G;
  }

  /// True if the affine forms (coefficients and constant) are identical.
  bool sameForm(const Constraint &Other) const {
    return Coeffs == Other.Coeffs && Constant == Other.Constant;
  }

  /// True if the variable coefficient vectors are identical.
  bool sameCoeffs(const Constraint &Other) const {
    return Coeffs == Other.Coeffs;
  }

  const std::vector<int64_t> &coeffs() const { return Coeffs; }

private:
  std::vector<int64_t> Coeffs;
  int64_t Constant = 0;
  ConstraintKind Kind;
  bool Red = false;
};

} // namespace omega

#endif // OMEGA_OMEGA_CONSTRAINT_H
