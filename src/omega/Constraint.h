//===- omega/Constraint.h - Linear equality/inequality rows --------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Constraint is a single row of a Problem: an integer linear equality
/// (sum a_i x_i + c == 0) or inequality (sum a_i x_i + c >= 0) over the
/// owning Problem's variable space. Constraints carry a red/black tag used
/// by the combined projection+gist computation of Section 3.3.2 of the
/// paper ("red" rows are the new information p, "black" rows the context q).
///
/// Rows are the hot data structure of the whole core: coefficients live in
/// a SmallCoeffVector (inline storage up to 8 variables, heap beyond), so
/// constructing, copying and combining typical dependence rows never
/// allocates. Each row also lazily maintains a structural signature -- a
/// commutative hash of its orientation-canonical coefficient vector plus
/// the active-variable count -- which normalize() uses to bucket rows in
/// O(1) instead of O(vars) comparisons, and which the query cache reuses
/// when sorting rows into canonical key order.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_CONSTRAINT_H
#define OMEGA_OMEGA_CONSTRAINT_H

#include "support/Hashing.h"
#include "support/MathUtils.h"
#include "support/SmallCoeffVector.h"

#include <cassert>
#include <cstdint>

namespace omega {

/// Index of a variable within its owning Problem.
using VarId = int;

/// Whether a constraint row is an equality or a (>= 0) inequality.
enum class ConstraintKind : uint8_t { EQ, GEQ };

/// Structural summary of a row's coefficient vector, independent of the
/// row's orientation (a row and its negation share a signature), constant
/// and kind. Equal coefficient vectors (up to overall sign) have equal
/// signatures; unequal vectors collide only with mix64 probability.
struct RowSignature {
  /// Commutative hash of (position, canonical coefficient) pairs.
  uint64_t Hash = 0;
  /// Number of variables with non-zero coefficients.
  unsigned ActiveVars = 0;
  /// Sign of the leading non-zero coefficient (+1/-1), 0 for constant
  /// rows. Multiplying the row by Orientation makes the leading
  /// coefficient positive -- the canonical orientation normalize() merges
  /// under.
  int Orientation = 0;
};

class Constraint {
public:
  Constraint(ConstraintKind Kind, unsigned NumVars)
      : Coeffs(NumVars), Kind(Kind) {}

  ConstraintKind getKind() const { return Kind; }
  void setKind(ConstraintKind K) { Kind = K; }
  bool isEquality() const { return Kind == ConstraintKind::EQ; }
  bool isInequality() const { return Kind == ConstraintKind::GEQ; }

  unsigned getNumVars() const { return Coeffs.size(); }

  /// Grow-only: appended columns are zero, which leaves the cached
  /// signature valid.
  void resizeVars(unsigned NumVars) {
    assert(NumVars >= Coeffs.size() && "rows only gain variables");
    Coeffs.resize(NumVars);
  }

  int64_t getCoeff(VarId V) const {
    assert(V >= 0 && static_cast<unsigned>(V) < Coeffs.size());
    return Coeffs[V];
  }
  void setCoeff(VarId V, int64_t C) {
    assert(V >= 0 && static_cast<unsigned>(V) < Coeffs.size());
    Coeffs[V] = C;
    SigValid = false;
  }
  void addToCoeff(VarId V, int64_t C) {
    assert(V >= 0 && static_cast<unsigned>(V) < Coeffs.size());
    int64_t &Slot = Coeffs[V];
    Slot = checkedAdd(Slot, C);
    SigValid = false;
  }

  int64_t getConstant() const { return Constant; }
  void setConstant(int64_t C) { Constant = C; }
  void addToConstant(int64_t C) { Constant = checkedAdd(Constant, C); }

  bool isRed() const { return Red; }
  void setRed(bool R) { Red = R; }

  /// Returns true if variable \p V appears with a non-zero coefficient.
  bool involves(VarId V) const { return getCoeff(V) != 0; }

  /// Returns true if every variable coefficient is zero.
  bool isConstantRow() const {
    for (int64_t C : Coeffs)
      if (C != 0)
        return false;
    return true;
  }

  /// Returns the number of variables with non-zero coefficients (cached in
  /// the structural signature).
  unsigned getNumActiveVars() const { return signature().ActiveVars; }

  /// The row's structural signature, recomputed lazily after mutation.
  const RowSignature &signature() const {
    if (!SigValid) {
      Sig = RowSignature();
      const int64_t *D = Coeffs.data();
      for (unsigned V = 0, E = Coeffs.size(); V != E; ++V) {
        if (D[V] == 0)
          continue;
        if (Sig.Orientation == 0)
          Sig.Orientation = signOf(D[V]);
        Sig.Hash += hashCoeffTerm(
            V, static_cast<int64_t>(Sig.Orientation) * D[V]);
        ++Sig.ActiveVars;
      }
      SigValid = true;
    }
    return Sig;
  }

  /// Adds \p Scale times \p Other into this row (affine form included).
  /// Both rows must live in the same variable space.
  void addScaled(const Constraint &Other, int64_t Scale) {
    assert(Other.Coeffs.size() == Coeffs.size() && "variable space mismatch");
    int64_t *D = Coeffs.data();
    const int64_t *S = Other.Coeffs.data();
    for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
      D[I] = checkedAdd(D[I], checkedMul(Scale, S[I]));
    Constant = checkedAdd(Constant, checkedMul(Scale, Other.Constant));
    SigValid = false;
  }

  /// Multiplies the whole row (coefficients and constant) by \p Scale.
  void scale(int64_t Scale) {
    for (int64_t &C : Coeffs)
      C = checkedMul(C, Scale);
    Constant = checkedMul(Constant, Scale);
    SigValid = false;
  }

  /// Negates the affine form. For a GEQ this yields the form of the negated
  /// half-space *before* the strictness adjustment; use negateGEQ() for the
  /// logical negation of an inequality.
  void negateForm() {
    for (int64_t &C : Coeffs)
      C = -C; // coefficients are capped below |INT64_MIN|, no overflow
    Constant = checkedMul(Constant, -1);
    if (SigValid)
      Sig.Orientation = -Sig.Orientation; // hash/count are sign-canonical
  }

  /// Replaces an inequality (f >= 0) with its logical negation
  /// (f <= -1, i.e. -f - 1 >= 0). Only valid on inequalities.
  void negateGEQ() {
    assert(isInequality() && "negateGEQ on equality");
    negateForm();
    Constant = checkedSub(Constant, 1);
  }

  /// GCD of all variable coefficients (0 for a constant row).
  int64_t coeffGCD() const {
    int64_t G = 0;
    for (int64_t C : Coeffs)
      G = gcd64(G, C);
    return G;
  }

  /// True if the affine forms (coefficients and constant) are identical.
  bool sameForm(const Constraint &Other) const {
    return Constant == Other.Constant && Coeffs == Other.Coeffs;
  }

  /// True if the variable coefficient vectors are identical. The signature
  /// prescreen makes mismatches O(1).
  bool sameCoeffs(const Constraint &Other) const {
    const RowSignature &A = signature(), &B = Other.signature();
    if (A.Hash != B.Hash || A.ActiveVars != B.ActiveVars ||
        A.Orientation != B.Orientation)
      return false;
    return Coeffs == Other.Coeffs;
  }

  const SmallCoeffVector &coeffs() const { return Coeffs; }

private:
  SmallCoeffVector Coeffs;
  int64_t Constant = 0;
  mutable RowSignature Sig;
  ConstraintKind Kind;
  bool Red = false;
  mutable bool SigValid = true; // a fresh all-zero row has the zero signature

private:
  friend class Problem;
};

} // namespace omega

#endif // OMEGA_OMEGA_CONSTRAINT_H
