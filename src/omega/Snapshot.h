//===- omega/Snapshot.h - Resumable elimination snapshots ----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A resumable elimination pipeline for the Omega test. The dependence
/// analysis asks many near-duplicate questions about one statement pair:
/// the flow/anti/output x per-carried-level problems all share the
/// iteration spaces and subscript equalities and differ only in a handful
/// of ordering rows over the common loop variables. An EliminationSnapshot
/// runs the *shared* part of the pipeline once -- equality elimination plus
/// every Fourier-Motzkin step that is exact and touches none of the
/// variables a later delta may mention -- and hands back the reduced
/// system, so each (kind, level) query replays only its delta rows.
///
/// Soundness: substituting an equality away and an exact FM step both
/// compute an exact integer projection, and projection of a variable z
/// commutes with conjoining constraints that do not mention z:
///
///   sat(P and D) == sat((exists z. P) and D)      when z not in D
///
/// so as long as every delta row only touches *kept* variables, the reduced
/// system plus the delta is equisatisfiable with the original plus the
/// delta -- and since the eliminations are exact, even the projected ranges
/// of later-added distance variables are preserved, not just the verdict.
/// Inexact eliminations are never taken (the real shadow would only
/// over-approximate), which is the snapshot validity rule documented in
/// DESIGN.md; deltasCompatible() is the corresponding runtime check that a
/// replay's rows really avoid every eliminated column.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_SNAPSHOT_H
#define OMEGA_OMEGA_SNAPSHOT_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"

#include <vector>

namespace omega {

class EliminationSnapshot {
public:
  enum class State : uint8_t {
    Ready,       ///< reduced() is an exact stand-in for the base problem
    ProvedUnsat, ///< the shared system is unsatisfiable on its own
    Saturated    ///< arithmetic saturated; callers must use the scratch path
  };

  /// Reduces \p P, keeping every variable V with Keep[V] == true untouched
  /// (variables beyond Keep.size() are eliminable). Bumps
  /// Ctx.Stats.SnapshotBuilds and records a SnapshotBuild span.
  EliminationSnapshot(const Problem &P, const std::vector<bool> &Keep,
                      OmegaContext &Ctx = OmegaContext::current());

  State state() const { return St; }

  /// The reduced shared system. Columns are never compacted, so every VarId
  /// of the base problem remains valid; eliminated variables are dead
  /// columns. Only meaningful in State::Ready.
  const Problem &reduced() const { return Reduced; }

  /// Number of rows in reduced(): rows a replay appends to a copy start at
  /// this index.
  unsigned baseRows() const { return BaseRows; }

  /// True if \p V was eliminated during reduction (delta rows must not
  /// mention it).
  bool eliminated(VarId V) const { return Reduced.isDead(V); }

  /// Verifies that every row of \p Case at index >= baseRows() -- the delta
  /// rows a replay appended to a copy of reduced() -- avoids all eliminated
  /// columns. A false return means the replay would be unsound and the
  /// caller must fall back to the from-scratch path.
  bool deltasCompatible(const Problem &Case) const;

private:
  Problem Reduced;
  unsigned BaseRows = 0;
  State St = State::Ready;
};

} // namespace omega

#endif // OMEGA_OMEGA_SNAPSHOT_H
