//===- omega/OmegaStats.h - Counters for the evaluation harness ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight global counters recording how hard the Omega test had to
/// work. The benchmark harness uses them to classify analysis costs the way
/// Figure 6 of the paper does (no-Omega-needed vs. general test vs. split).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_OMEGASTATS_H
#define OMEGA_OMEGA_OMEGASTATS_H

#include <cstdint>

namespace omega {

struct OmegaStats {
  uint64_t SatisfiabilityCalls = 0;
  uint64_t ExactEliminations = 0;
  uint64_t InexactEliminations = 0;
  uint64_t SplintersExplored = 0;
  uint64_t DarkShadowDecided = 0;   // dark shadow satisfiable => sat
  uint64_t RealShadowDecided = 0;   // real shadow unsatisfiable => unsat
  uint64_t ModHatSubstitutions = 0;
  uint64_t GistFastDrops = 0;       // constraints dropped by fast checks
  uint64_t GistFastKeeps = 0;       // constraints kept by fast checks
  uint64_t GistSatTests = 0;        // satisfiability tests in gist loop

  void reset() { *this = OmegaStats(); }
};

/// Global statistics instance (single-threaded analysis assumed, as in the
/// original tool).
OmegaStats &stats();

} // namespace omega

#endif // OMEGA_OMEGA_OMEGASTATS_H
