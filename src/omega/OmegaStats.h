//===- omega/OmegaStats.h - Counters for the evaluation harness ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight counters recording how hard the Omega test had to work. The
/// benchmark harness uses them to classify analysis costs the way Figure 6
/// of the paper does (no-Omega-needed vs. general test vs. split).
///
/// Counters live inside an OmegaContext (see omega/OmegaContext.h); every
/// decision-procedure entry point takes a context and bumps that context's
/// counters, so concurrent analyses with separate contexts never share
/// state. The free stats() accessor is a deprecated compatibility shim over
/// the calling thread's current context.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_OMEGASTATS_H
#define OMEGA_OMEGA_OMEGASTATS_H

#include <cstdint>

namespace omega {

struct OmegaStats {
  uint64_t SatisfiabilityCalls = 0;
  uint64_t ProjectionCalls = 0;     // projectOntoMask entries
  uint64_t GistCalls = 0;           // gist() entries (cache hits included)
  uint64_t ExactEliminations = 0;
  uint64_t InexactEliminations = 0;
  uint64_t SplintersExplored = 0;
  uint64_t DarkShadowDecided = 0;   // dark shadow satisfiable => sat
  uint64_t RealShadowDecided = 0;   // real shadow unsatisfiable => unsat
  uint64_t ModHatSubstitutions = 0;
  uint64_t GistFastDrops = 0;       // constraints dropped by fast checks
  uint64_t GistFastKeeps = 0;       // constraints kept by fast checks
  uint64_t GistSatTests = 0;        // satisfiability tests in gist loop

  void reset() { *this = OmegaStats(); }

  /// Accumulates another context's counters (used to fold per-worker stats
  /// into a whole-run total).
  void merge(const OmegaStats &O) {
    SatisfiabilityCalls += O.SatisfiabilityCalls;
    ProjectionCalls += O.ProjectionCalls;
    GistCalls += O.GistCalls;
    ExactEliminations += O.ExactEliminations;
    InexactEliminations += O.InexactEliminations;
    SplintersExplored += O.SplintersExplored;
    DarkShadowDecided += O.DarkShadowDecided;
    RealShadowDecided += O.RealShadowDecided;
    ModHatSubstitutions += O.ModHatSubstitutions;
    GistFastDrops += O.GistFastDrops;
    GistFastKeeps += O.GistFastKeeps;
    GistSatTests += O.GistSatTests;
  }
};

/// Statistics of the calling thread's current OmegaContext. Kept only as a
/// compatibility shim for pre-context code; new code should hold an
/// OmegaContext and read Ctx.Stats directly.
[[deprecated("hold an OmegaContext and use Ctx.Stats instead")]]
OmegaStats &stats();

} // namespace omega

#endif // OMEGA_OMEGA_OMEGASTATS_H
