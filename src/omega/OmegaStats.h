//===- omega/OmegaStats.h - Counters for the evaluation harness ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight counters recording how hard the Omega test had to work. The
/// benchmark harness uses them to classify analysis costs the way Figure 6
/// of the paper does (no-Omega-needed vs. general test vs. split).
///
/// Counters live inside an OmegaContext (see omega/OmegaContext.h); every
/// decision-procedure entry point takes a context and bumps that context's
/// counters, so concurrent analyses with separate contexts never share
/// state.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_OMEGASTATS_H
#define OMEGA_OMEGA_OMEGASTATS_H

#include <cstdint>

namespace omega {

struct OmegaStats {
  uint64_t SatisfiabilityCalls = 0;
  uint64_t ProjectionCalls = 0;     // projectOntoMask entries
  uint64_t GistCalls = 0;           // gist() entries (cache hits included)
  uint64_t ExactEliminations = 0;
  uint64_t InexactEliminations = 0;
  uint64_t SplintersExplored = 0;
  uint64_t DarkShadowDecided = 0;   // dark shadow satisfiable => sat
  uint64_t RealShadowDecided = 0;   // real shadow unsatisfiable => unsat
  uint64_t ModHatSubstitutions = 0;
  uint64_t GistFastDrops = 0;       // constraints dropped by fast checks
  uint64_t GistFastKeeps = 0;       // constraints kept by fast checks
  uint64_t GistSatTests = 0;        // satisfiability tests in gist loop
  uint64_t SatCacheHits = 0;        // sat verdicts answered by QueryCache
  uint64_t SatCacheMisses = 0;      // sat lookups that missed
  uint64_t GistCacheHits = 0;       // gist results answered by QueryCache
  uint64_t GistCacheMisses = 0;     // gist lookups that missed

  // Incremental pair solving (deps/PairSolver.h). SnapshotReuses is the
  // dedicated "answered on a snapshot" counter: snapshot-path queries go
  // through isSatisfiable() exactly once like any other query (so the
  // Figure-6 classes still sum to SatisfiabilityCalls) and bump this
  // counter *instead of* a second cache-hit count.
  uint64_t SnapshotBuilds = 0;      // pair snapshots constructed
  uint64_t SnapshotReuses = 0;      // (kind, level) cases replayed on one
  uint64_t SnapshotFallbacks = 0;   // cases sent back to the scratch path
  uint64_t SnapshotCacheHits = 0;   // snapshots adopted from the QueryCache
  uint64_t SnapshotCacheMisses = 0; // snapshot lookups that missed
  uint64_t SnapshotEvictions = 0;   // snapshots dropped by the LRU cap

  // Edit-incremental re-analysis (engine/DeltaPlanner.h): how this run's
  // access pairs were classified against the baseline. Reused pairs adopt
  // recorded outcomes without solving; Resolved pairs re-ran because their
  // fingerprint changed (or conservatively failed to match); New pairs
  // touch an array the baseline never saw. The three always sum to the
  // run's pair count when delta analysis is active.
  uint64_t DeltaPairsReused = 0;
  uint64_t DeltaPairsResolved = 0;
  uint64_t DeltaPairsNew = 0;

  // Global result store (engine/ResultStore.h): pair and kill groups this
  // run materialized from the cross-request store (hits), looked up but
  // had to solve (misses), and entries the store's LRU bound dropped while
  // this run inserted (evictions). All zero when no store is attached.
  uint64_t ResultStoreHits = 0;
  uint64_t ResultStoreMisses = 0;
  uint64_t ResultStoreEvictions = 0;

  // Quick-test pre-filter: dependence queries decided with no Omega call,
  // by class. QuickTestDecided always equals the sum of the four classes
  // (each decision bumps its class and the total together).
  uint64_t QuickTestZIV = 0;        // constant subscript difference != 0
  uint64_t QuickTestGCD = 0;        // gcd of coefficients divides nothing
  uint64_t QuickTestBounds = 0;     // single-subscript bounds exclude 0
  uint64_t QuickTestTrivialDep = 0; // trivially dependent / independent pair
  uint64_t QuickTestDecided = 0;    // total queries decided by the tier

  void reset() { *this = OmegaStats(); }

  /// Accumulates another context's counters (used to fold per-worker stats
  /// into a whole-run total).
  void merge(const OmegaStats &O) { apply(O, /*Sign=*/+1); }

  /// Subtracts a snapshot taken earlier on the same context; the tracer
  /// uses this to attribute counter movement to individual spans.
  void subtract(const OmegaStats &O) { apply(O, /*Sign=*/-1); }

private:
  void apply(const OmegaStats &O, int64_t Sign) {
    SatisfiabilityCalls += Sign * O.SatisfiabilityCalls;
    ProjectionCalls += Sign * O.ProjectionCalls;
    GistCalls += Sign * O.GistCalls;
    ExactEliminations += Sign * O.ExactEliminations;
    InexactEliminations += Sign * O.InexactEliminations;
    SplintersExplored += Sign * O.SplintersExplored;
    DarkShadowDecided += Sign * O.DarkShadowDecided;
    RealShadowDecided += Sign * O.RealShadowDecided;
    ModHatSubstitutions += Sign * O.ModHatSubstitutions;
    GistFastDrops += Sign * O.GistFastDrops;
    GistFastKeeps += Sign * O.GistFastKeeps;
    GistSatTests += Sign * O.GistSatTests;
    SatCacheHits += Sign * O.SatCacheHits;
    SatCacheMisses += Sign * O.SatCacheMisses;
    GistCacheHits += Sign * O.GistCacheHits;
    GistCacheMisses += Sign * O.GistCacheMisses;
    SnapshotBuilds += Sign * O.SnapshotBuilds;
    SnapshotReuses += Sign * O.SnapshotReuses;
    SnapshotFallbacks += Sign * O.SnapshotFallbacks;
    SnapshotCacheHits += Sign * O.SnapshotCacheHits;
    SnapshotCacheMisses += Sign * O.SnapshotCacheMisses;
    SnapshotEvictions += Sign * O.SnapshotEvictions;
    DeltaPairsReused += Sign * O.DeltaPairsReused;
    DeltaPairsResolved += Sign * O.DeltaPairsResolved;
    DeltaPairsNew += Sign * O.DeltaPairsNew;
    ResultStoreHits += Sign * O.ResultStoreHits;
    ResultStoreMisses += Sign * O.ResultStoreMisses;
    ResultStoreEvictions += Sign * O.ResultStoreEvictions;
    QuickTestZIV += Sign * O.QuickTestZIV;
    QuickTestGCD += Sign * O.QuickTestGCD;
    QuickTestBounds += Sign * O.QuickTestBounds;
    QuickTestTrivialDep += Sign * O.QuickTestTrivialDep;
    QuickTestDecided += Sign * O.QuickTestDecided;
  }
};

} // namespace omega

#endif // OMEGA_OMEGA_OMEGASTATS_H
