//===- omega/Problem.h - Conjunctions of linear integer constraints ------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Problem is a conjunction of integer linear equalities and inequalities
/// over a table of named variables. It is the unit the Omega test operates
/// on: satisfiability, projection, and gist computation all consume and
/// produce Problems.
///
/// Variables are either *protected* (they name something the client cares
/// about: loop variables, dependence distances, symbolic constants) or
/// *wildcards* (existentially quantified helpers introduced by equality
/// elimination and stride constraints). Eliminated variables stay in the
/// table as dead columns so that VarIds remain stable across copies; this
/// keeps client code that holds VarIds simple.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_PROBLEM_H
#define OMEGA_OMEGA_PROBLEM_H

#include "omega/Constraint.h"

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace omega {

/// A (variable, coefficient) pair for the constraint-building helpers.
using Term = std::pair<VarId, int64_t>;

class Problem {
public:
  Problem() = default;

  /// Creates a named variable. \p Protected variables survive projection;
  /// unprotected ones are existential helpers.
  VarId addVar(std::string Name, bool Protected = true);

  /// Creates a fresh unprotected wildcard variable with a generated name.
  VarId addWildcard();

  unsigned getNumVars() const { return Vars.size(); }
  const std::string &getVarName(VarId V) const { return Vars[V].Name; }
  void setVarName(VarId V, std::string Name) {
    Vars[V].Name = std::move(Name);
  }
  bool isProtected(VarId V) const { return Vars[V].Protected; }
  void setProtected(VarId V, bool P) { Vars[V].Protected = P; }
  bool isDead(VarId V) const { return Vars[V].Dead; }
  void markDead(VarId V) { Vars[V].Dead = true; }

  /// Returns true if \p V appears with non-zero coefficient in any row.
  bool involves(VarId V) const;

  /// Appends a blank constraint row and returns a reference to it.
  ///
  /// Reference invalidation: the returned reference (and any reference or
  /// iterator into constraints()) is invalidated by any subsequent row
  /// addition -- addRow, addEQ, addGEQ, addConstraint -- and by addVar /
  /// addWildcard (which resize every row), normalize(), substitute(), and
  /// clearConstraints(). Fill the row completely before growing the
  /// problem again, or index through constraints() instead of holding the
  /// reference.
  Constraint &addRow(ConstraintKind Kind, bool Red = false);

  /// Adds `sum Terms + C == 0`. The span overload is the canonical
  /// signature; the initializer_list overload is a brace-literal
  /// convenience that forwards to it.
  void addEQ(std::span<const Term> Terms, int64_t C, bool Red = false);
  void addEQ(std::initializer_list<Term> Terms, int64_t C, bool Red = false) {
    addEQ(std::span<const Term>(Terms.begin(), Terms.size()), C, Red);
  }

  /// Adds `sum Terms + C >= 0`. Overloads mirror addEQ.
  void addGEQ(std::span<const Term> Terms, int64_t C, bool Red = false);
  void addGEQ(std::initializer_list<Term> Terms, int64_t C, bool Red = false) {
    addGEQ(std::span<const Term>(Terms.begin(), Terms.size()), C, Red);
  }

  /// Copies \p Row (from a Problem with an identical variable layout) into
  /// this problem.
  void addConstraint(const Constraint &Row);

  /// Move-in variant for rows the caller no longer needs.
  void addConstraint(Constraint &&Row) {
    assert(Row.getNumVars() == Vars.size() && "variable space mismatch");
    Rows.push_back(std::move(Row));
  }

  const std::vector<Constraint> &constraints() const { return Rows; }
  std::vector<Constraint> &constraints() { return Rows; }
  unsigned getNumConstraints() const { return Rows.size(); }
  unsigned getNumEQs() const;
  unsigned getNumGEQs() const;
  bool hasRedConstraints() const;

  /// Removes every constraint but keeps the variable table.
  void clearConstraints() { Rows.clear(); }

  /// Returns a Problem with the same variable table and no constraints.
  Problem cloneLayout() const;

  /// Result of normalize(): the problem is either consistent so far or has
  /// been detected to be trivially unsatisfiable.
  enum class NormalizeResult { Ok, False };

  /// Canonicalizes the constraint system:
  ///  * gcd-reduces every row (tightening inequality constants, detecting
  ///    unsatisfiable equalities),
  ///  * drops trivially true rows and detects trivially false ones,
  ///  * merges duplicate rows, keeping the tightest constant,
  ///  * turns opposed inequality pairs into equalities (or detects
  ///    contradictions),
  ///  * drops inequalities directly implied by an equality with the same
  ///    coefficient vector.
  ///
  /// The merge passes bucket rows by their structural signature (see
  /// RowSignature), so merging is O(rows) hash probes instead of O(rows *
  /// vars * log rows) ordered-map comparisons; the emitted row order is
  /// bit-identical to normalizeReference(). Configure with
  /// -DOMEGA_CHECK_NORMALIZE to have every call self-check against the
  /// reference implementation.
  NormalizeResult normalize();

  /// The original ordered-map implementation of normalize(), retained as a
  /// differential oracle for the hashed path. Produces the identical row
  /// list (same rows, same order) as normalize(); tests and the
  /// OMEGA_CHECK_NORMALIZE self-check diff the two.
  NormalizeResult normalizeReference();

  /// Drops columns at index >= \p KeepBelow that are marked dead and appear
  /// in no row, renumbering the surviving variables (relative order kept).
  /// Long elimination chains otherwise accumulate dead wildcard columns
  /// that every subsequent row copy and scan pays for. Callers holding
  /// VarIds must only compact above them (\p KeepBelow). Returns the number
  /// of columns removed; when \p RemapOut is non-null it receives the
  /// old-index -> new-index map (-1 for removed columns) so callers can
  /// renumber per-variable side tables.
  unsigned compactDeadColumns(unsigned KeepBelow = 0,
                              std::vector<int> *RemapOut = nullptr);

  /// Substitutes `x_Target := sum Def.coeffs * x + Def.constant` into every
  /// row and marks \p Target dead. \p Def must have a zero coefficient for
  /// \p Target itself.
  void substitute(VarId Target, const Constraint &Def);

  /// Renders the problem for debugging/tests, e.g. "{ x - 2 >= 0; x <= 5 }".
  std::string toString() const;

  /// Renders one row using this problem's variable names.
  std::string constraintToString(const Constraint &Row) const;

private:
  struct VarInfo {
    std::string Name;
    bool Protected;
    bool Dead = false;
  };

  /// Shared phase 1 of both normalize implementations: gcd-reduce each row
  /// in place, drop trivially true rows, and collect the survivors into
  /// \p Reduced. Returns false if a row is trivially unsatisfiable.
  bool gcdReduceRows(std::vector<Constraint> &Reduced);

  /// The hash-bucketed merge behind normalize().
  NormalizeResult normalizeHashed();

  std::vector<VarInfo> Vars;
  std::vector<Constraint> Rows;
  unsigned NextWildcardId = 0;
};

} // namespace omega

#endif // OMEGA_OMEGA_PROBLEM_H
