//===- omega/Gist.h - Gists and implication tautology checks -------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3 of the paper: (gist p given q) is a minimal subset of p's
/// constraints such that (gist p given q) && q == p && q -- "the new
/// information contained in p, given that we already know q". The same
/// machinery answers whether q => p is a tautology
/// ((gist p given q) == True) and, via negation expansion, whether an
/// implication with a disjunctive right-hand side holds.
///
/// Both problems passed to these functions must share an identical variable
/// layout (same variable table); build them in one space or via
/// Problem::cloneLayout().
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OMEGA_GIST_H
#define OMEGA_OMEGA_GIST_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"

#include <optional>
#include <vector>

namespace omega {

struct GistOptions {
  /// Run the paper's fast special-case checks (single-constraint
  /// implication, normal-direction screening, two-constraint implication)
  /// before the naive satisfiability loop. Off only for the ablation
  /// benchmark.
  bool UseFastChecks = true;
};

/// Computes (gist P given Given). The result is a conjunction over the same
/// variable layout; an empty result means Given => P ("True").
Problem gist(const Problem &P, const Problem &Given,
             const GistOptions &Opts = GistOptions(),
             OmegaContext &Ctx = OmegaContext::current());

/// Returns true iff Given => P is a tautology (over integer points).
bool implies(const Problem &Given, const Problem &P,
             OmegaContext &Ctx = OmegaContext::current());

/// Returns true iff P => (Qs[0] || Qs[1] || ...) is a tautology. An empty
/// union is False, so this returns true only if P is unsatisfiable.
///
/// Unprotected variables are treated as existentially quantified on both
/// sides (P's wildcards widen the left-hand side; Q's wildcards are
/// handled by stride-aware negation). If some Q has wildcard structure the
/// negation machinery cannot express, the check conservatively returns
/// false ("cannot prove the implication"), which is the sound direction
/// for every analysis in Section 4.
bool impliesUnion(const Problem &P, const std::vector<Problem> &Qs,
                  OmegaContext &Ctx = OmegaContext::current());

/// The logical negation of \p P (with its unprotected variables read as
/// existentials) as a union of problems over the same layout; each result
/// may add one fresh wildcard column for a stride residue. Returns nullopt
/// when P's wildcard structure is not a set of simple strides (each
/// unprotected variable confined to a single equality).
std::optional<std::vector<Problem>> negateProblem(const Problem &P);

/// Conjoins \p B onto \p A. Both must extend one shared base layout of
/// \p SharedVars variables; columns of B beyond that (fresh wildcards) and
/// B's unprotected columns (projection strides) are remapped onto fresh
/// wildcards of the result, so existentials never conflate.
Problem conjoinExtending(const Problem &A, const Problem &B,
                         unsigned SharedVars);

/// Appends to \p Out the constraint(s) whose disjunction is the negation of
/// \p Row: one row for an inequality (f >= 0 becomes -f - 1 >= 0), two for
/// an equality (f >= 1 and -f >= 1).
void appendNegationBranches(const Constraint &Row,
                            std::vector<Constraint> &Out);

/// Combined projection + gist (Section 3.3.2): \p Combined holds the red
/// rows (p) and black rows (q) in one problem; the variables not marked in
/// \p Keep are projected away, and the gist of the surviving red rows given
/// the black rows is returned. Exact is false when the projection
/// splintered and the result was computed from the real shadow instead.
struct RedGistResult {
  Problem Gist;
  bool Exact = true;
};
RedGistResult projectAndGist(const Problem &Combined,
                             const std::vector<bool> &Keep,
                             const GistOptions &Opts = GistOptions(),
                             OmegaContext &Ctx = OmegaContext::current());

} // namespace omega

#endif // OMEGA_OMEGA_GIST_H
