//===- omega/Snapshot.cpp - Resumable elimination snapshots ---------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Snapshot.h"

#include "obs/Trace.h"
#include "omega/EqElimination.h"
#include "omega/FourierMotzkin.h"
#include "support/MathUtils.h"

#include <algorithm>

using namespace omega;

EliminationSnapshot::EliminationSnapshot(const Problem &P,
                                         const std::vector<bool> &Keep,
                                         OmegaContext &Ctx)
    : Reduced(P) {
  ++Ctx.Stats.SnapshotBuilds;
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::SnapshotBuild,
                       static_cast<uint32_t>(P.getNumVars()),
                       static_cast<uint32_t>(P.constraints().size()));
  OverflowScope Scope;

  auto MayElim = [&Keep](VarId V) {
    return V >= static_cast<VarId>(Keep.size()) ||
           !Keep[static_cast<std::size_t>(V)];
  };

  // Phase 1: substitute away every equality that mentions an eliminable
  // variable. Substitution is an exact projection, so this is always safe;
  // afterwards every remaining equality involves only kept variables, which
  // also re-establishes the FM precondition (an eliminable candidate never
  // appears in an equality).
  if (solveEqualities(Reduced, MayElim, Ctx) == SolveResult::False) {
    St = Scope.overflowed() ? State::Saturated : State::ProvedUnsat;
    return;
  }

  // Phase 2: Fourier-Motzkin, but only steps predicted *and verified* to be
  // exact. The cost estimate can mispredict (normalization inside the step
  // can expose a non-unit pairing), so eliminate on a copy via the
  // const-ref overload and keep a skip set: a variable whose elimination
  // turned out inexact is left in place rather than retried forever.
  std::vector<bool> Skip(Reduced.getNumVars(), false);
  while (!Scope.overflowed()) {
    // Restricted equality elimination may leave residual stride equalities:
    // rows with exactly one eliminable variable at a non-unit coefficient
    // among kept ones (Projection isolates those). FM requires its target
    // to appear in no equality, so such variables are not candidates.
    std::vector<bool> InEq(Reduced.getNumVars(), false);
    for (const Constraint &Row : Reduced.constraints())
      if (Row.isEquality())
        for (VarId V = 0, E = Reduced.getNumVars(); V != static_cast<VarId>(E);
             ++V)
          if (Row.getCoeff(V) != 0)
            InEq[V] = true;

    VarId Best = -1;
    FMCost BestCost;
    for (VarId V = 0, E = Reduced.getNumVars(); V != static_cast<VarId>(E);
         ++V) {
      if (Skip[V] || InEq[V] || !MayElim(V) || Reduced.isDead(V) ||
          !Reduced.involves(V))
        continue;
      FMCost Cost = estimateEliminationCost(Reduced, V);
      if (Cost.Inexact)
        continue;
      if (Best < 0 || Cost < BestCost) {
        Best = V;
        BestCost = Cost;
      }
    }
    if (Best < 0)
      break;

    FMResult R = [&] {
      obs::ScopedSpan FMSpan(Ctx.Trace, obs::SpanKind::FMEliminate,
                             static_cast<uint32_t>(Reduced.getNumVars()),
                             static_cast<uint32_t>(Reduced.constraints().size()));
      return fourierMotzkinEliminate(Reduced, Best);
    }();
    if (!R.Exact) {
      Skip[Best] = true;
      continue;
    }
    ++Ctx.Stats.ExactEliminations;
    Reduced = std::move(R.RealShadow);
    if (Reduced.normalize() == Problem::NormalizeResult::False) {
      St = Scope.overflowed() ? State::Saturated : State::ProvedUnsat;
      return;
    }
    // normalize() may synthesize equalities from opposed inequalities;
    // substitute them away again so no eliminable variable sits in an
    // equality when the next FM step runs.
    if (Reduced.getNumEQs() != 0 &&
        solveEqualities(Reduced, MayElim, Ctx) == SolveResult::False) {
      St = Scope.overflowed() ? State::Saturated : State::ProvedUnsat;
      return;
    }
    Skip.resize(Reduced.getNumVars(), false);
  }

  // Saturated arithmetic means the reduced rows may be clamped garbage:
  // nothing derived from them is trustworthy, including a ProvedUnsat we
  // did not reach. Callers route every query through the scratch path.
  if (Scope.overflowed()) {
    St = State::Saturated;
    return;
  }

  BaseRows = static_cast<unsigned>(Reduced.constraints().size());
}

bool EliminationSnapshot::deltasCompatible(const Problem &Case) const {
  const std::vector<Constraint> &Rows = Case.constraints();
  unsigned SnapVars = Reduced.getNumVars();
  for (std::size_t I = BaseRows; I < Rows.size(); ++I) {
    const Constraint &Row = Rows[I];
    unsigned E = std::min(SnapVars, Row.getNumVars());
    for (VarId V = 0; V != static_cast<VarId>(E); ++V)
      if (Row.getCoeff(V) != 0 && Reduced.isDead(V))
        return false;
  }
  return true;
}
