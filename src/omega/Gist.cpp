//===- omega/Gist.cpp -----------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/Gist.h"

#include "obs/Trace.h"
#include "omega/OmegaContext.h"
#include "omega/Projection.h"
#include "omega/QueryCache.h"
#include "omega/Satisfiability.h"

#include <algorithm>
#include <map>

using namespace omega;

void omega::appendNegationBranches(const Constraint &Row,
                                   std::vector<Constraint> &Out) {
  if (Row.isInequality()) {
    Constraint Neg = Row;
    Neg.negateGEQ();
    Out.push_back(std::move(Neg));
    return;
  }
  // not (f == 0)  <=>  (f - 1 >= 0) or (-f - 1 >= 0).
  Constraint Pos = Row;
  Pos.setKind(ConstraintKind::GEQ);
  Pos.addToConstant(-1);
  Out.push_back(std::move(Pos));
  Constraint Neg = Row;
  Neg.setKind(ConstraintKind::GEQ);
  Neg.negateForm();
  Neg.addToConstant(-1);
  Out.push_back(std::move(Neg));
}

namespace {

/// Does \p By (an inequality or equality) alone imply the inequality \p E?
bool impliedBySingle(const Constraint &E, const Constraint &By) {
  assert(E.isInequality() && "gist candidates are inequalities");
  if (By.isInequality())
    // Same normal, at-least-as-tight constant: v.x + c' >= 0 implies
    // v.x + c >= 0 iff c >= c'.
    return By.sameCoeffs(E) && E.getConstant() >= By.getConstant();
  // Equality v.x + c' == 0 pins v.x; check both orientations.
  if (By.sameCoeffs(E))
    return E.getConstant() >= By.getConstant();
  Constraint Flipped = By;
  Flipped.negateForm();
  if (Flipped.sameCoeffs(E))
    return E.getConstant() >= Flipped.getConstant();
  return false;
}

/// Is E implied by the conjunction of E1 and E2 (each taken as an
/// inequality form v.x + c >= 0)? Checks for rational multipliers
/// lambda1, lambda2 >= 0 with lambda1*v1 + lambda2*v2 == vE and
/// lambda1*c1 + lambda2*c2 <= cE, using exact cross-product arithmetic.
bool impliedByPairForms(const Constraint &E, const Constraint &E1,
                        const Constraint &E2) {
  unsigned N = E.getNumVars();
  // Find coordinates (i, j) where (v1, v2) are linearly independent.
  for (unsigned I = 0; I != N; ++I) {
    for (unsigned J = I + 1; J != N; ++J) {
      __int128 Det = (__int128)E1.getCoeff(I) * E2.getCoeff(J) -
                     (__int128)E1.getCoeff(J) * E2.getCoeff(I);
      if (Det == 0)
        continue;
      // lambda1 = N1 / Det, lambda2 = N2 / Det.
      __int128 N1 = (__int128)E.getCoeff(I) * E2.getCoeff(J) -
                    (__int128)E.getCoeff(J) * E2.getCoeff(I);
      __int128 N2 = (__int128)E1.getCoeff(I) * E.getCoeff(J) -
                    (__int128)E1.getCoeff(J) * E.getCoeff(I);
      if (Det < 0) {
        Det = -Det;
        N1 = -N1;
        N2 = -N2;
      }
      if (N1 < 0 || N2 < 0)
        return false;
      // Verify every coordinate: N1*v1 + N2*v2 == Det*vE.
      for (unsigned K = 0; K != N; ++K)
        if (N1 * E1.getCoeff(K) + N2 * E2.getCoeff(K) !=
            Det * (__int128)E.getCoeff(K))
          return false;
      // Constant condition: N1*c1 + N2*c2 <= Det*cE.
      return N1 * E1.getConstant() + N2 * E2.getConstant() <=
             Det * (__int128)E.getConstant();
    }
  }
  return false; // parallel normals: single-constraint check covers this
}

/// Expands \p Row into the inequality forms it contributes for the
/// inner-product and pair checks (equalities contribute both orientations).
void appendForms(const Constraint &Row, std::vector<Constraint> &Out) {
  if (Row.isInequality()) {
    Out.push_back(Row);
    return;
  }
  Constraint Pos = Row;
  Pos.setKind(ConstraintKind::GEQ);
  Out.push_back(Pos);
  Constraint Neg = Pos;
  Neg.negateForm();
  Out.push_back(std::move(Neg));
}

/// Inner product of the normals of two rows.
__int128 normalDot(const Constraint &A, const Constraint &B) {
  __int128 Dot = 0;
  for (unsigned I = 0, E = A.getNumVars(); I != E; ++I)
    Dot += (__int128)A.getCoeff(I) * B.getCoeff(I);
  return Dot;
}

} // namespace

static Problem gistImpl(const Problem &P, const Problem &Given,
                        const GistOptions &Opts, OmegaContext &Ctx);

Problem omega::gist(const Problem &P, const Problem &Given,
                    const GistOptions &Opts, OmegaContext &Ctx) {
  assert(P.getNumVars() == Given.getNumVars() &&
         "gist arguments must share one variable layout");
  // Span first, counter second: the span's own delta must include this
  // call so top-level spans sum to the context counters.
  obs::ScopedSpan Span(Ctx.Trace, obs::SpanKind::Gist,
                       static_cast<uint32_t>(P.getNumVars()),
                       static_cast<uint32_t>(P.constraints().size() +
                                             Given.constraints().size()));
  ++Ctx.Stats.GistCalls;

  // Memoization: the result's rows are stored bare and re-hung on the
  // caller's layout, so names never matter; the key serializes both row
  // systems exactly.
  QueryCache *Cache = Ctx.Cache;
  std::string Key;
  if (Cache) {
    Key = gistCacheKey(P, Given, Opts.UseFastChecks);
    if (std::optional<std::vector<Constraint>> Hit =
            Cache->lookupGist(Key, &Ctx.Stats)) {
      Span.cache(obs::CacheTag::Hit);
      Problem Result = P.cloneLayout();
      for (const Constraint &Row : *Hit)
        Result.addConstraint(Row);
      return Result;
    }
    Span.cache(obs::CacheTag::Miss);
  }

  // Coefficient-overflow containment: if anything saturates while
  // computing the gist, fall back to P itself, which satisfies the gist
  // equation trivially (it is just not minimal). Unreliable results are
  // never memoized.
  OverflowScope Scope;
  Problem Result = gistImpl(P, Given, Opts, Ctx);
  if (Scope.overflowed())
    return P;
  if (Cache)
    Cache->storeGist(Key, Result.constraints());
  return Result;
}

static Problem gistImpl(const Problem &P, const Problem &Given,
                        const GistOptions &Opts, OmegaContext &Ctx) {

  // The gist is defined relative to a consistent context: when p && q has
  // no solutions the new information in p is "False" (the naive loop would
  // otherwise vacuously drop everything).
  {
    Problem Both = Given;
    for (const Constraint &Row : P.constraints())
      Both.addConstraint(Row);
    if (!isSatisfiable(std::move(Both), SatOptions(), Ctx)) {
      Problem False = P.cloneLayout();
      False.addGEQ({}, -1);
      return False;
    }
  }

  // Convert p's equalities into matched inequality pairs (Section 3.3).
  std::vector<Constraint> Candidates;
  for (const Constraint &Row : P.constraints())
    appendForms(Row, Candidates);

  // Context starts as q; accepted candidates are appended as we go.
  Problem Context = Given;

  // Inequality forms of the context for the fast checks.
  std::vector<Constraint> ContextForms;
  for (const Constraint &Row : Given.constraints())
    appendForms(Row, ContextForms);

  enum class State { Undecided, Keep, Drop };
  std::vector<State> States(Candidates.size(), State::Undecided);

  if (Opts.UseFastChecks) {
    // Check 1: drop candidates implied by any single constraint of q or of
    // the other candidates (checking others first keeps one of a duplicate
    // pair).
    for (unsigned I = 0; I != Candidates.size(); ++I) {
      bool Implied = false;
      for (const Constraint &Row : Given.constraints())
        if (impliedBySingle(Candidates[I], Row)) {
          Implied = true;
          break;
        }
      for (unsigned J = 0; !Implied && J != Candidates.size(); ++J)
        if (J != I && States[J] != State::Drop &&
            Candidates[J].sameCoeffs(Candidates[I]) &&
            (Candidates[I].getConstant() > Candidates[J].getConstant() ||
             (Candidates[I].getConstant() == Candidates[J].getConstant() &&
              J < I)))
          Implied = true;
      if (Implied) {
        States[I] = State::Drop;
        ++Ctx.Stats.GistFastDrops;
      }
    }

    // Check 3: a candidate with no supporting constraint (positive inner
    // product of normals among q's forms and the other live candidates)
    // must be in the gist: nothing else can bound in its direction, so
    // (not e) && p && q stays satisfiable whenever p && q is.
    for (unsigned I = 0; I != Candidates.size(); ++I) {
      if (States[I] != State::Undecided)
        continue;
      bool Supported = false;
      for (const Constraint &Form : ContextForms)
        if (normalDot(Candidates[I], Form) > 0) {
          Supported = true;
          break;
        }
      for (unsigned J = 0; !Supported && J != Candidates.size(); ++J)
        if (J != I && States[J] != State::Drop &&
            normalDot(Candidates[I], Candidates[J]) > 0)
          Supported = true;
      if (!Supported) {
        States[I] = State::Keep;
        ++Ctx.Stats.GistFastKeeps;
      }
    }

    // Check 4: drop candidates implied by some pair of constraints drawn
    // from q and the still-live candidates. The live set is recomputed per
    // candidate so that sequential drops stay sound by transitivity (a
    // dropped row is implied by rows that are themselves implied by what
    // remains).
    for (unsigned I = 0; I != Candidates.size(); ++I) {
      if (States[I] != State::Undecided)
        continue;
      std::vector<Constraint> LiveForms = ContextForms;
      for (unsigned J = 0; J != Candidates.size(); ++J)
        if (J != I && States[J] != State::Drop)
          LiveForms.push_back(Candidates[J]);
      bool Implied = false;
      for (unsigned A = 0; !Implied && A != LiveForms.size(); ++A)
        for (unsigned B = A + 1; !Implied && B != LiveForms.size(); ++B)
          Implied = impliedByPairForms(Candidates[I], LiveForms[A],
                                       LiveForms[B]);
      if (Implied) {
        States[I] = State::Drop;
        ++Ctx.Stats.GistFastDrops;
      }
    }
  }

  if (Ctx.Trace) {
    unsigned Drops = 0, Keeps = 0;
    for (State S : States) {
      Drops += S == State::Drop;
      Keeps += S == State::Keep;
    }
    if (Drops || Keeps)
      Ctx.Trace->decision("gist fast-check: " + std::to_string(Drops) +
                              " dropped, " + std::to_string(Keeps) + " kept",
                          static_cast<uint32_t>(P.getNumVars()),
                          static_cast<uint32_t>(Candidates.size()));
  }

  // Naive algorithm on whatever remains undecided:
  //   gist (e:p) q = e : gist p (e:q)   if (not e) && p && q is satisfiable
  //   gist (e:p) q = gist p q           otherwise
  Problem Result = P.cloneLayout();
  for (unsigned I = 0; I != Candidates.size(); ++I) {
    if (States[I] == State::Drop)
      continue;
    if (States[I] == State::Undecided) {
      Problem Test = Context;
      // Rest of p: undecided or kept candidates after this one.
      for (unsigned J = I + 1; J != Candidates.size(); ++J)
        if (States[J] != State::Drop)
          Test.addConstraint(Candidates[J]);
      std::vector<Constraint> Neg;
      appendNegationBranches(Candidates[I], Neg);
      assert(Neg.size() == 1 && "candidates are inequalities");
      Test.addConstraint(Neg[0]);
      ++Ctx.Stats.GistSatTests;
      if (!isSatisfiable(std::move(Test), SatOptions(), Ctx))
        continue; // redundant given the rest
    }
    Result.addConstraint(Candidates[I]);
    Context.addConstraint(Candidates[I]);
  }

  // Re-merge matched inequality pairs into equalities.
  [[maybe_unused]] auto NR = Result.normalize();
  assert(NR == Problem::NormalizeResult::Ok &&
         "gist of consistent problems cannot be false");
  return Result;
}

bool omega::implies(const Problem &Given, const Problem &P,
                    OmegaContext &Ctx) {
  assert(P.getNumVars() == Given.getNumVars() &&
         "implies arguments must share one variable layout");
  for (const Constraint &Row : P.constraints()) {
    std::vector<Constraint> Neg;
    appendNegationBranches(Row, Neg);
    for (const Constraint &Branch : Neg) {
      Problem Test = Given;
      Test.addConstraint(Branch);
      if (isSatisfiable(std::move(Test), SatOptions(), Ctx))
        return false;
    }
  }
  return true;
}

std::optional<std::vector<Problem>> omega::negateProblem(const Problem &P) {
  // Count, per unprotected variable, how many rows use it.
  std::vector<unsigned> RowsUsing(P.getNumVars(), 0);
  for (const Constraint &Row : P.constraints())
    for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
      if (Row.involves(V) && !P.isProtected(V))
        ++RowsUsing[V];

  std::vector<Problem> Out;
  for (const Constraint &Row : P.constraints()) {
    std::vector<VarId> Wildcards;
    for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
      if (Row.involves(V) && !P.isProtected(V))
        Wildcards.push_back(V);

    if (Wildcards.empty()) {
      std::vector<Constraint> Branches;
      appendNegationBranches(Row, Branches);
      for (const Constraint &Branch : Branches) {
        Problem Piece = P.cloneLayout();
        Piece.addConstraint(Branch);
        Out.push_back(std::move(Piece));
      }
      continue;
    }
    // Simple stride: an equality with one wildcard appearing nowhere else.
    if (!Row.isEquality() || Wildcards.size() != 1 ||
        RowsUsing[Wildcards.front()] != 1)
      return std::nullopt;
    VarId W = Wildcards.front();
    int64_t A = absVal(Row.getCoeff(W));
    if (A == 1)
      continue; // exists w: f + w == 0 is vacuously true
    // Row: f + a*w + c == 0 means f + c == 0 (mod a); the negation is the
    // union over residues r in [1, a-1] of exists w': f + c - r + a*w' == 0.
    for (int64_t Residue = 1; Residue < A; ++Residue) {
      Problem Piece = P.cloneLayout();
      VarId NewW = Piece.addWildcard();
      Constraint New = Row;
      New.setCoeff(W, 0);
      New.addToConstant(-Residue);
      New.resizeVars(Piece.getNumVars());
      New.setCoeff(NewW, Row.getCoeff(W));
      Piece.addConstraint(New);
      Out.push_back(std::move(Piece));
    }
  }
  return Out;
}

Problem omega::conjoinExtending(const Problem &A, const Problem &B,
                                unsigned SharedVars) {
  Problem Result = A;
  std::map<VarId, VarId> Remap;
  for (const Constraint &Row : B.constraints()) {
    Result.addRow(Row.getKind(), Row.isRed());
    Result.constraints().back().setConstant(Row.getConstant());
    for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V) {
      int64_t C = Row.getCoeff(V);
      if (C == 0)
        continue;
      VarId Target = V;
      if (static_cast<unsigned>(V) >= SharedVars || !B.isProtected(V)) {
        auto [It, Inserted] = Remap.try_emplace(V, -1);
        if (Inserted)
          It->second = Result.addWildcard();
        Target = It->second;
      }
      Result.constraints().back().setCoeff(Target, C);
    }
  }
  return Result;
}

namespace {

/// Conjoins one negation piece (source layout plus at most one fresh
/// wildcard column) onto the accumulator, remapping that extra column.
Problem conjoinBranch(const Problem &Acc, const Problem &Branch,
                      unsigned BaseVars) {
  return conjoinExtending(Acc, Branch, BaseVars);
}

bool hasCounterexample(const Problem &Acc,
                       const std::vector<std::vector<Problem>> &NegatedQs,
                       unsigned Index, unsigned BaseVars,
                       OmegaContext &Ctx) {
  if (!isSatisfiable(Acc, SatOptions(), Ctx))
    return false;
  if (Index == NegatedQs.size())
    return true;
  for (const Problem &Branch : NegatedQs[Index])
    if (hasCounterexample(conjoinBranch(Acc, Branch, BaseVars), NegatedQs,
                          Index + 1, BaseVars, Ctx))
      return true;
  return false;
}

} // namespace

bool omega::impliesUnion(const Problem &P, const std::vector<Problem> &Qs,
                         OmegaContext &Ctx) {
  // The shared base layout is the common prefix; any columns beyond it
  // (projection-minted wildcards on either side) are existential and get
  // remapped apart when branches are conjoined. Unprotected columns below
  // the base are remapped too, so the minimum is safe.
  unsigned BaseVars = P.getNumVars();
  std::vector<std::vector<Problem>> NegatedQs;
  for (const Problem &Q : Qs) {
    BaseVars = std::min(BaseVars, Q.getNumVars());
    if (Q.getNumConstraints() == 0)
      return true; // a True disjunct makes the union True
    std::optional<std::vector<Problem>> Neg = negateProblem(Q);
    if (!Neg)
      return false; // cannot negate: fail conservatively
    NegatedQs.push_back(std::move(*Neg));
  }
  return !hasCounterexample(P, NegatedQs, 0, BaseVars, Ctx);
}

RedGistResult omega::projectAndGist(const Problem &Combined,
                                    const std::vector<bool> &Keep,
                                    const GistOptions &Opts,
                                    OmegaContext &Ctx) {
  ProjectionResult Proj = projectOntoMask(Combined, Keep,
                                          ProjectOptions{/*RemoveRedundant=*/
                                                         false,
                                                         /*DropEmptyPieces=*/
                                                         true},
                                          Ctx);
  RedGistResult Result;
  const Problem *Piece = nullptr;
  if (Proj.isSinglePiece()) {
    Piece = &Proj.Pieces.front();
  } else {
    // Splintered: fall back to the real-shadow approximation, as the paper
    // does ("we can easily determine this if the projection does not
    // splinter").
    Piece = &Proj.Approx;
    Result.Exact = false;
  }

  Problem Red = Piece->cloneLayout();
  Problem Black = Piece->cloneLayout();
  for (const Constraint &Row : Piece->constraints())
    (Row.isRed() ? Red : Black).addConstraint(Row);
  Result.Gist = gist(Red, Black, Opts, Ctx);
  return Result;
}
