//===- omega/FourierMotzkin.cpp -------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "omega/FourierMotzkin.h"

#include <algorithm>

using namespace omega;

namespace {

struct Partition {
  std::vector<const Constraint *> Keep;   // rows not involving Z
  std::vector<const Constraint *> Lowers; // coeff(Z) > 0: b z >= -L
  std::vector<const Constraint *> Uppers; // coeff(Z) < 0: a z <= U
};

Partition partitionRows(const Problem &P, VarId Z) {
  Partition Part;
  for (const Constraint &Row : P.constraints()) {
    assert(!(Row.isEquality() && Row.involves(Z)) &&
           "eliminate equalities before Fourier-Motzkin");
    int64_t C = Row.getCoeff(Z);
    if (C == 0)
      Part.Keep.push_back(&Row);
    else if (C > 0)
      Part.Lowers.push_back(&Row);
    else
      Part.Uppers.push_back(&Row);
  }
  return Part;
}

bool allUnit(const std::vector<const Constraint *> &Rows, VarId Z) {
  for (const Constraint *Row : Rows)
    if (absVal(Row->getCoeff(Z)) != 1)
      return false;
  return true;
}

/// The combination of a lower bound (b z + L >= 0) and an upper bound
/// (-a z + U >= 0): a*L + b*U >= Slack, i.e. the row a*Lower + b*Upper with
/// the constant reduced by Slack (0 for the real shadow, (a-1)(b-1) for the
/// dark shadow).
Constraint combine(const Constraint &Lower, const Constraint &Upper, VarId Z,
                   int64_t Slack) {
  int64_t B = Lower.getCoeff(Z);
  int64_t A = -Upper.getCoeff(Z);
  assert(B > 0 && A > 0 && "bound orientation mismatch");
  Constraint Row(ConstraintKind::GEQ, Lower.getNumVars());
  Row.addScaled(Lower, A);
  Row.addScaled(Upper, B);
  assert(Row.getCoeff(Z) == 0 && "Z must cancel in the combination");
  Row.addToConstant(-Slack);
  Row.setRed(Lower.isRed() || Upper.isRed());
  return Row;
}

/// Shared elimination body. \p Consume, when non-null, aliases \p P and
/// marks it expendable: the last splinter steals its storage instead of
/// copying.
FMResult fmEliminate(const Problem &P, VarId Z, FMParts Parts,
                     Problem *Consume) {
  Partition Part = partitionRows(P, Z);

  FMResult Result;
  Result.RealShadow = P.cloneLayout();
  Result.RealShadow.markDead(Z);

  // Unbounded on one side: the projection is exactly the other rows.
  if (Part.Lowers.empty() || Part.Uppers.empty()) {
    for (const Constraint *Row : Part.Keep)
      Result.RealShadow.addConstraint(*Row);
    Result.Exact = true;
    return Result;
  }

  // Every (lower, upper) pair is exact iff all lower coefficients are 1 or
  // all upper coefficients are 1. When exact, real and dark shadows
  // coincide, so only the real shadow is materialized.
  Result.Exact = allUnit(Part.Lowers, Z) || allUnit(Part.Uppers, Z);
  bool WantDark = !Result.Exact && Parts == FMParts::All;

  if (WantDark) {
    Result.DarkShadow = Result.RealShadow;
    for (const Constraint *Row : Part.Keep)
      Result.DarkShadow.addConstraint(*Row);
  }
  for (const Constraint *Row : Part.Keep)
    Result.RealShadow.addConstraint(*Row);

  for (const Constraint *Lower : Part.Lowers) {
    for (const Constraint *Upper : Part.Uppers) {
      Result.RealShadow.addConstraint(combine(*Lower, *Upper, Z, 0));
      if (WantDark) {
        int64_t B = Lower->getCoeff(Z);
        int64_t A = -Upper->getCoeff(Z);
        int64_t Slack = checkedMul(A - 1, B - 1);
        Result.DarkShadow.addConstraint(combine(*Lower, *Upper, Z, Slack));
      }
    }
  }

  if (Result.Exact)
    return Result;

  // Splinters [Pug91]: if an integer solution exists outside the dark
  // shadow, then for some lower bound (b z >= beta) it satisfies
  // b z == beta + i with 0 <= i <= (amax*b - amax - b) / amax, where amax is
  // the largest upper-bound coefficient of Z.
  int64_t AMax = 0;
  for (const Constraint *Upper : Part.Uppers)
    AMax = std::max(AMax, -Upper->getCoeff(Z));

  // Splinter enumeration is proportional to the lower-bound coefficients;
  // saturated or degenerate coefficient growth would make it astronomical.
  // Give up exactness instead (the sticky flag makes every caller fall
  // back to its conservative answer). A real-shadow-only caller never
  // explores splinters, but the cap/saturation checks still run so the
  // sticky flag ends up in the same state either way.
  constexpr int64_t SplinterCap = 1 << 16;
  for (size_t LI = 0, LE = Part.Lowers.size(); LI != LE; ++LI) {
    if (arithOverflowFlag())
      break;
    const Constraint *Lower = Part.Lowers[LI];
    int64_t B = Lower->getCoeff(Z);
    int64_t MaxI = floorDiv(
        checkedSub(checkedMul(AMax, B), checkedAdd(AMax, B)), AMax);
    if (MaxI >= SplinterCap) {
      arithOverflowFlag() = true;
      break;
    }
    if (Parts == FMParts::RealShadowOnly)
      continue;
    for (int64_t I = 0; I <= MaxI; ++I) {
      // Copy the equality before a potential move of P: Lower points into
      // P's rows.
      Constraint Eq = *Lower;
      Eq.setKind(ConstraintKind::EQ);
      Eq.addToConstant(-I);
      bool LastSplinter = Consume && LI + 1 == LE && I == MaxI;
      Problem Splinter = LastSplinter ? std::move(*Consume) : Problem(P);
      Splinter.addConstraint(std::move(Eq));
      Result.Splinters.push_back(std::move(Splinter));
    }
  }
  return Result;
}

} // namespace

FMResult omega::fourierMotzkinEliminate(const Problem &P, VarId Z,
                                        FMParts Parts) {
  return fmEliminate(P, Z, Parts, /*Consume=*/nullptr);
}

FMResult omega::fourierMotzkinEliminate(Problem &&P, VarId Z, FMParts Parts) {
  return fmEliminate(P, Z, Parts, &P);
}

FMCost omega::estimateEliminationCost(const Problem &P, VarId Z) {
  long NumLowers = 0, NumUppers = 0;
  int64_t AMax = 0;
  std::vector<int64_t> LowerCoeffs;
  bool LowersUnit = true, UppersUnit = true;
  for (const Constraint &Row : P.constraints()) {
    int64_t C = Row.getCoeff(Z);
    if (C == 0)
      continue;
    if (C > 0) {
      ++NumLowers;
      LowerCoeffs.push_back(C);
      LowersUnit &= (C == 1);
    } else {
      ++NumUppers;
      AMax = std::max(AMax, -C);
      UppersUnit &= (C == -1);
    }
  }

  FMCost Cost;
  if (NumLowers == 0 || NumUppers == 0) {
    Cost.ResultSize = -(NumLowers + NumUppers);
    return Cost;
  }
  Cost.Inexact = !(LowersUnit || UppersUnit);
  Cost.ResultSize = NumLowers * NumUppers - NumLowers - NumUppers;
  if (Cost.Inexact)
    for (int64_t B : LowerCoeffs) {
      int64_t MaxI = floorDiv(
          checkedSub(checkedMul(AMax, B), checkedAdd(AMax, B)), AMax);
      Cost.SplinterCount += std::max<int64_t>(0, MaxI + 1);
    }
  return Cost;
}
