//===- api/Serve.cpp ------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "api/Serve.h"

#include "api/Json.h"
#include "api/Response.h"
#include "ir/Sema.h"
#include "omega/QueryCache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace omega;
using namespace omega::api;

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(const Config &C) : Cfg(C) {
  if (Cfg.Defaults.UseQueryCache) {
    Cache = std::make_unique<QueryCache>();
    Cache->setSnapshotCapacity(Cfg.Defaults.SnapshotCacheCap);
    if (!Cfg.CacheFile.empty()) {
      std::ifstream In(Cfg.CacheFile, std::ios::binary);
      std::string Err;
      if (!In.is_open())
        StartupNote = "cold start: no cache file at " + Cfg.CacheFile;
      else if (Cache->load(In, Err))
        StartupNote = "warm start: loaded " + std::to_string(Cache->size()) +
                      " entries from " + Cfg.CacheFile;
      else
        StartupNote = "cold start: " + Err;
    }
  } else if (!Cfg.CacheFile.empty()) {
    StartupNote = "cold start: caching disabled, ignoring " + Cfg.CacheFile;
  }

  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  engine::AnalysisRequest Base = Cfg.Defaults.toEngineRequest();
  Base.SharedCache = Cache.get();
  Base.UseQueryCache = Cache != nullptr;
  for (unsigned I = 0; I != Cfg.Workers; ++I)
    Engines.push_back(std::make_unique<engine::DependenceEngine>(Base));
  for (unsigned I = 0; I != Cfg.Workers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

Server::~Server() { stop(); }

/// One accepted connection. The fd closes when the last holder -- the
/// reader thread or an in-flight response callback -- drops its reference,
/// so a response can never write to a recycled descriptor.
struct Server::Conn {
  int Fd;
  std::mutex WriteMu;

  explicit Conn(int Fd) : Fd(Fd) {}
  ~Conn() { ::close(Fd); }

  void writeLine(std::string S) {
    S += '\n';
    std::lock_guard<std::mutex> Lock(WriteMu);
    std::size_t Off = 0;
    while (Off < S.size()) {
      ssize_t N = ::send(Fd, S.data() + Off, S.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return; // peer went away; the request was still fully processed
      Off += static_cast<std::size_t>(N);
    }
  }
};

void Server::requestStop() {
  StopFlag.store(true);
  // Unblock a socket accept loop (shutdown on a listening socket makes
  // accept() return) and any connection readers.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
  std::lock_guard<std::mutex> Lock(ConnsMu);
  for (const std::weak_ptr<Conn> &W : Conns)
    if (std::shared_ptr<Conn> C = W.lock())
      ::shutdown(C->Fd, SHUT_RD);
}

void Server::stop() {
  requestStop();
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Stopped)
      return;
    Stopped = true;
    Draining = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  if (Cache && !Cfg.CacheFile.empty()) {
    std::string Tmp = Cfg.CacheFile + ".tmp";
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (Out.is_open() && Cache->save(Out)) {
      Out.close();
      std::rename(Tmp.c_str(), Cfg.CacheFile.c_str());
    } else {
      std::remove(Tmp.c_str());
    }
  }
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

void Server::submit(std::string Line,
                    std::function<void(std::string)> Respond) {
  json::Value Doc;
  std::string Err;
  if (!json::parse(Line, Doc, Err) || !Doc.isObject()) {
    Respond(renderServerError(false, 0, "parse_error",
                              Err.empty() ? "request is not a JSON object"
                                          : Err));
    return;
  }

  bool HasId = false;
  uint64_t Id = 0;
  if (const json::Value *V = Doc.get("id")) {
    if (!V->isNumber() || V->asNumber() < 0) {
      Respond(renderServerError(false, 0, "bad_request",
                                "\"id\" must be a non-negative number"));
      return;
    }
    HasId = true;
    Id = static_cast<uint64_t>(V->asNumber());
  }
  auto Fail = [&](const char *Code, const std::string &Message) {
    Respond(renderServerError(HasId, Id, Code, Message));
  };

  std::string Op = "analyze";
  if (const json::Value *V = Doc.get("op")) {
    if (!V->isString())
      return Fail("bad_request", "\"op\" must be a string");
    Op = V->asString();
  }
  if (Op == "shutdown") {
    Respond(renderServerError(HasId, Id, "shutdown", "server stopping"));
    requestStop();
    return;
  }
  if (Op != "analyze")
    return Fail("bad_request", "unknown op \"" + Op + "\"");

  Request R;
  R.HasId = HasId;
  R.Id = Id;
  const json::Value *Src = Doc.get("source");
  if (!Src || !Src->isString())
    return Fail("bad_request", "\"source\" must be a string");
  R.Source = Src->asString();

  if (const json::Value *V = Doc.get("session")) {
    if (!V->isString())
      return Fail("bad_request", "\"session\" must be a string");
    R.Session = V->asString();
    if (R.Session.empty())
      return Fail("bad_request", "\"session\" must be non-empty");
  }

  R.Opts = Cfg.Defaults;
  if (const json::Value *O = Doc.get("options")) {
    if (!O->isObject())
      return Fail("bad_request", "\"options\" must be an object");
    if (!optionsFromJson(*O, R.Opts, Err))
      return Fail("bad_request", Err);
  }

  uint64_t DeadlineMs = Cfg.DeadlineMs;
  if (const json::Value *V = Doc.get("deadlineMs")) {
    if (!V->isNumber() || V->asNumber() < 0)
      return Fail("bad_request", "\"deadlineMs\" must be a non-negative number");
    DeadlineMs = static_cast<uint64_t>(V->asNumber());
  }
  if (DeadlineMs != 0) {
    R.HasDeadline = true;
    R.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(DeadlineMs);
  }
  R.Respond = std::move(Respond);

  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Draining || StopFlag.load()) {
      R.Respond(renderServerError(HasId, Id, "shutdown", "server stopping"));
      return;
    }
    if (Queue.size() >= Cfg.MaxQueue) {
      R.Respond(renderServerError(
          HasId, Id, "overloaded",
          "queue full (" + std::to_string(Cfg.MaxQueue) + " requests)"));
      return;
    }
    Queue.push_back(std::move(R));
  }
  QueueCV.notify_one();
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(unsigned Index) {
  while (true) {
    Request R;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCV.wait(Lock, [&] { return !Queue.empty() || Draining; });
      if (Queue.empty())
        return; // draining and nothing left
      R = std::move(Queue.front());
      Queue.pop_front();
    }
    runOne(R, Index);
  }
}

void Server::runOne(Request &R, unsigned Index) {
  if (R.HasDeadline && std::chrono::steady_clock::now() >= R.Deadline) {
    R.Respond(renderServerError(R.HasId, R.Id, "deadline_exceeded",
                                "deadline passed while queued"));
    return;
  }

  ir::AnalyzedProgram AP = ir::analyzeSource(R.Source);
  if (!AP.ok()) {
    std::string Msg;
    for (const ir::Diagnostic &D : AP.Diags) {
      if (!Msg.empty())
        Msg += "; ";
      Msg += D.toString();
    }
    R.Respond(renderServerError(R.HasId, R.Id, "analysis_error", Msg));
    return;
  }

  engine::DependenceEngine &Engine = *Engines[Index];
  engine::AnalysisRequest EReq = R.Opts.toEngineRequest();
  // Session requests run in delta mode: consult the session's retained
  // baseline (if any) and record a fresh one for the next request. The
  // shared_ptr keeps the prior baseline alive for the whole run even if
  // a concurrent request on the same session replaces it.
  std::shared_ptr<const engine::BaselineResult> Prior;
  if (!R.Session.empty()) {
    Prior = sessionBaseline(R.Session);
    EReq.Baseline = Prior.get();
    EReq.BuildBaseline = true;
  }
  Engine.applyOptions(EReq);
  auto Start = std::chrono::steady_clock::now();
  engine::AnalysisResult Result = Engine.analyze(AP);
  if (!R.Session.empty() && Result.Baseline)
    retainSession(R.Session, Result.Baseline);
  double WallMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                Start)
          .count();
  std::string ResultJson = renderResult(Result);
  std::string Metrics = renderMetrics(Result, Engine.jobs(), WallMs,
                                      /*ProfileJson=*/"", /*ExplainLog=*/"");
  R.Respond(renderServerOk(R.Id, ResultJson, Metrics));
}

//===----------------------------------------------------------------------===//
// Incremental sessions
//===----------------------------------------------------------------------===//

std::shared_ptr<const engine::BaselineResult>
Server::sessionBaseline(const std::string &Session) {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  auto It = Sessions.find(Session);
  if (It == Sessions.end())
    return nullptr;
  SessionLRU.splice(SessionLRU.begin(), SessionLRU, It->second.Recency);
  return It->second.Baseline;
}

void Server::retainSession(
    const std::string &Session,
    std::shared_ptr<const engine::BaselineResult> Baseline) {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  auto It = Sessions.find(Session);
  if (It != Sessions.end()) {
    It->second.Baseline = std::move(Baseline);
    SessionLRU.splice(SessionLRU.begin(), SessionLRU, It->second.Recency);
    return;
  }
  SessionLRU.push_front(Session);
  Sessions.emplace(Session, SessionEntry{std::move(Baseline),
                                         SessionLRU.begin()});
  std::size_t Cap = Cfg.MaxSessions ? Cfg.MaxSessions : 1;
  while (Sessions.size() > Cap) {
    Sessions.erase(SessionLRU.back());
    SessionLRU.pop_back();
  }
}

//===----------------------------------------------------------------------===//
// stdin JSONL mode
//===----------------------------------------------------------------------===//

int Server::runStdin(std::istream &In, std::ostream &Out) {
  std::mutex WriteMu;
  std::string Line;
  while (!stopRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    submit(std::move(Line), [&WriteMu, &Out](std::string Resp) {
      std::lock_guard<std::mutex> Lock(WriteMu);
      Out << Resp << "\n";
      Out.flush();
    });
    Line.clear();
  }
  stop(); // drains: every submitted request is answered before we return
  return 0;
}

//===----------------------------------------------------------------------===//
// Unix socket mode
//===----------------------------------------------------------------------===//

int Server::runSocket(const std::string &Path, std::ostream &Log) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Log << "error: socket path too long: " << Path << "\n";
    stop();
    return 1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Log << "error: socket(): " << std::strerror(errno) << "\n";
    stop();
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  Path.copy(Addr.sun_path, sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Log << "error: bind/listen on " << Path << ": " << std::strerror(errno)
        << "\n";
    ::close(Fd);
    stop();
    return 1;
  }
  ListenFd.store(Fd);
  Log << "omega-serve: listening on " << Path << "\n";
  Log.flush();

  std::vector<std::thread> Readers;
  while (true) {
    int CFd = ::accept(Fd, nullptr, nullptr);
    if (CFd < 0)
      break; // requestStop() shut the listening socket down
    auto C = std::make_shared<Conn>(CFd);
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::weak_ptr<Conn> &W) {
                                   return W.expired();
                                 }),
                  Conns.end());
      Conns.push_back(C);
    }
    Readers.emplace_back([this, C] {
      std::string Buf;
      char Chunk[4096];
      while (true) {
        ssize_t N = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
        if (N <= 0)
          break;
        Buf.append(Chunk, static_cast<std::size_t>(N));
        std::size_t Pos;
        while ((Pos = Buf.find('\n')) != std::string::npos) {
          std::string Line = Buf.substr(0, Pos);
          Buf.erase(0, Pos + 1);
          if (Line.empty())
            continue;
          submit(std::move(Line),
                 [C](std::string Resp) { C->writeLine(std::move(Resp)); });
        }
      }
    });
  }
  int Listen = ListenFd.exchange(-1);
  if (Listen >= 0)
    ::close(Listen);
  else
    ::close(Fd);
  for (std::thread &T : Readers)
    T.join();
  stop(); // in-flight responses still reach their Conn via shared_ptr
  ::unlink(Path.c_str());
  return 0;
}
