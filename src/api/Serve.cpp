//===- api/Serve.cpp ------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "api/Serve.h"

#include "api/Json.h"
#include "api/Response.h"
#include "ir/Sema.h"
#include "obs/Trace.h"
#include "omega/QueryCache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace omega;
using namespace omega::api;

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

namespace {

/// Default latency histogram boundaries in microseconds: tight resolution
/// where the corpus kernels live (sub-millisecond), decades above for
/// queue pressure and pathological requests. Config::LatencyBoundsUs
/// (--latency-buckets-us) overrides them.
const std::vector<uint64_t> DefaultLatencyBoundsUs = {
    100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000,
    1000000};

std::string isoTimestamp() {
  std::time_t T = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm Tm{};
  gmtime_r(&T, &Tm);
  char Buf[40];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ", &Tm);
  return Buf;
}

std::string msField(uint64_t Micros) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", static_cast<double>(Micros) / 1000.0);
  return Buf;
}

} // namespace

/// The server's instruments plus the access-log/exposition sinks. The
/// registry is always on -- recording is a handful of relaxed atomics per
/// request -- and the accounting discipline mirrors the paper's Figure 6:
/// every submit() increments requests_total and exactly one per-op
/// counter, every response increments exactly one per-code counter, and
/// the engine-fed counters accumulate each request's own attribution, so
/// at quiescence they equal the shared cache's global totals.
struct Server::Telemetry {
  obs::MetricsRegistry Registry;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();

  // One per submit().
  obs::Counter *RequestsTotal;
  // Exactly one of these per submit(): the dispatched op, or "invalid"
  // for lines rejected before dispatch (parse error, bad id, bad op).
  obs::Counter *ReqAnalyze, *ReqHealth, *ReqMetrics, *ReqShutdown,
      *ReqInvalid;
  // Exactly one of these per response line.
  obs::Counter *RespOk, *RespParseError, *RespBadRequest, *RespAnalysisError,
      *RespOverloaded, *RespDeadline, *RespShutdown;
  // Analyze requests answered ok (== solve/serialize histogram counts).
  obs::Counter *AnalyzeOk;
  // Analyze requests answered from a concurrent leader's solve instead of
  // their own engine run (a subset of AnalyzeOk).
  obs::Counter *ReqCoalesced;
  // Actual engine runs performed. The coalescing witness:
  // analyses_total + coalesced_total == analyze_ok at quiescence (session
  // requests never coalesce, so each is one analysis).
  obs::Counter *EngAnalyses;
  // Engine-fed: per-request attribution summed into process totals.
  obs::Counter *EngSatCalls, *EngSatHits, *EngSatMisses, *EngGistHits,
      *EngGistMisses, *EngSnapHits, *EngSnapMisses, *EngQuickDecided,
      *EngDeltaReused, *EngDeltaResolved, *EngDeltaNew, *StoreHits,
      *StoreMisses, *StoreEvictions;

  obs::Gauge *QueueDepth, *ActiveWorkers, *LiveSessions, *CacheEntries,
      *SnapshotEntries, *ResultStoreEntries;

  obs::Histogram *QueueWaitUs, *ParseUs, *SolveUs, *SerializeUs, *RequestUs;

  std::mutex AccessMu;
  std::ofstream AccessLog;
  /// Bytes written to the current access-log file (rotation trigger);
  /// guarded by AccessMu.
  uint64_t AccessLogBytes = 0;
  std::mutex FileMu;
  std::atomic<uint64_t> SlowSeq{0};
  std::atomic<uint64_t> Completed{0};

  explicit Telemetry(const std::vector<uint64_t> &LatencyBoundsUs) {
    auto C = [&](const char *Name, const char *Help) {
      return Registry.counter(Name, Help);
    };
    RequestsTotal = C("omega_serve_requests_total",
                      "Request lines submitted (every op and every "
                      "malformed line)");
    ReqAnalyze = C("omega_serve_requests_analyze_total",
                   "Requests dispatched as the analyze op");
    ReqHealth = C("omega_serve_requests_health_total",
                  "Requests dispatched as the health op");
    ReqMetrics = C("omega_serve_requests_metrics_total",
                   "Requests dispatched as the metrics op");
    ReqShutdown = C("omega_serve_requests_shutdown_total",
                    "Requests dispatched as the shutdown op");
    ReqInvalid = C("omega_serve_requests_invalid_total",
                   "Lines rejected before dispatch (parse error, bad id, "
                   "unknown op)");
    RespOk = C("omega_serve_responses_ok_total", "Responses with ok=true");
    RespParseError = C("omega_serve_responses_parse_error_total",
                       "parse_error responses");
    RespBadRequest = C("omega_serve_responses_bad_request_total",
                       "bad_request responses");
    RespAnalysisError = C("omega_serve_responses_analysis_error_total",
                          "analysis_error responses");
    RespOverloaded = C("omega_serve_responses_overloaded_total",
                       "overloaded responses (queue full)");
    RespDeadline = C("omega_serve_responses_deadline_exceeded_total",
                     "deadline_exceeded responses");
    RespShutdown = C("omega_serve_responses_shutdown_total",
                     "shutdown responses (admission refused while "
                     "stopping)");
    AnalyzeOk = C("omega_serve_analyze_ok_total",
                  "Analyze requests answered with a result");
    ReqCoalesced = C("omega_serve_requests_coalesced_total",
                     "Analyze requests answered from a concurrent "
                     "identical request's solve");
    EngAnalyses = C("omega_engine_analyses_total",
                    "Engine analysis runs actually performed");
    EngSatCalls = C("omega_engine_sat_calls_total",
                    "Satisfiability calls made by worker engines");
    EngSatHits = C("omega_engine_sat_cache_hits_total",
                   "Sat verdicts answered from the shared cache");
    EngSatMisses = C("omega_engine_sat_cache_misses_total",
                     "Sat queries the shared cache could not answer");
    EngGistHits = C("omega_engine_gist_cache_hits_total",
                    "Gists answered from the shared cache");
    EngGistMisses = C("omega_engine_gist_cache_misses_total",
                      "Gist queries the shared cache could not answer");
    EngSnapHits = C("omega_engine_snapshot_cache_hits_total",
                    "Elimination snapshots adopted from the shared cache");
    EngSnapMisses = C("omega_engine_snapshot_cache_misses_total",
                      "Snapshot lookups the shared cache could not answer");
    EngQuickDecided = C("omega_engine_quicktest_decided_total",
                        "Pair queries decided by the ZIV/GCD/bounds "
                        "pre-filter");
    EngDeltaReused = C("omega_engine_delta_pairs_reused_total",
                       "Pairs materialized from a session baseline");
    EngDeltaResolved = C("omega_engine_delta_pairs_resolved_total",
                         "Pairs re-solved because their fingerprint "
                         "changed");
    EngDeltaNew = C("omega_engine_delta_pairs_new_total",
                    "Pairs with no baseline counterpart");
    StoreHits = C("omega_result_store_hits_total",
                  "Pair/kill-group solves materialized from the global "
                  "result store");
    StoreMisses = C("omega_result_store_misses_total",
                    "Result-store consultations that had to solve");
    StoreEvictions = C("omega_result_store_evictions_total",
                       "Result-store entries LRU-evicted at capacity");

    auto G = [&](const char *Name, const char *Help) {
      return Registry.gauge(Name, Help);
    };
    QueueDepth = G("omega_serve_queue_depth",
                   "Requests admitted but not yet claimed by a worker");
    ActiveWorkers = G("omega_serve_active_workers",
                      "Workers currently running a request");
    LiveSessions = G("omega_serve_live_sessions",
                     "Incremental sessions with a retained baseline");
    CacheEntries = G("omega_serve_cache_entries",
                     "Entries resident in the shared query cache");
    SnapshotEntries = G("omega_serve_snapshot_store_entries",
                        "Elimination snapshots resident in the shared "
                        "cache's LRU store");
    ResultStoreEntries = G("omega_result_store_entries",
                           "Solved outcomes resident in the global "
                           "result store");

    auto H = [&](const char *Name, const char *Help) {
      return Registry.histogram(Name, Help, LatencyBoundsUs);
    };
    QueueWaitUs = H("omega_serve_queue_wait_us",
                    "Admission-to-dequeue wait per run request");
    ParseUs = H("omega_serve_parse_us",
                "Source parse+sema time per run request");
    SolveUs = H("omega_serve_solve_us",
                "Engine analysis time per ok request");
    SerializeUs = H("omega_serve_serialize_us",
                    "Response rendering time per ok request");
    RequestUs = H("omega_serve_request_us",
                  "Admission-to-response total per run request");
  }

  obs::Counter *codeCounter(const std::string &Code) {
    if (Code == "ok")
      return RespOk;
    if (Code == "parse_error")
      return RespParseError;
    if (Code == "bad_request")
      return RespBadRequest;
    if (Code == "analysis_error")
      return RespAnalysisError;
    if (Code == "overloaded")
      return RespOverloaded;
    if (Code == "deadline_exceeded")
      return RespDeadline;
    return RespShutdown;
  }
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(const Config &C) : Cfg(C), Store(C.ResultStoreCap) {
  Tele = std::make_unique<Telemetry>(Cfg.LatencyBoundsUs.empty()
                                         ? DefaultLatencyBoundsUs
                                         : Cfg.LatencyBoundsUs);
  auto Note = [&](const std::string &S) {
    if (!StartupNote.empty())
      StartupNote += "; ";
    StartupNote += S;
  };
  if (Cfg.Defaults.UseQueryCache) {
    Cache = std::make_unique<QueryCache>();
    Cache->setSnapshotCapacity(Cfg.Defaults.SnapshotCacheCap);
    if (!Cfg.CacheFile.empty()) {
      std::ifstream In(Cfg.CacheFile, std::ios::binary);
      std::string Err;
      if (!In.is_open())
        StartupNote = "cold start: no cache file at " + Cfg.CacheFile;
      else if (Cache->load(In, Err))
        StartupNote = "warm start: loaded " + std::to_string(Cache->size()) +
                      " entries from " + Cfg.CacheFile;
      else
        StartupNote = "cold start: " + Err;
    }
  } else if (!Cfg.CacheFile.empty()) {
    StartupNote = "cold start: caching disabled, ignoring " + Cfg.CacheFile;
  }

  if (!Cfg.ResultCacheFile.empty()) {
    // A missing file is the normal first boot; anything else that fails
    // to load is corruption or version skew, warned and cold-started
    // (deserialize left the store empty -- never a wrong answer).
    std::ifstream Probe(Cfg.ResultCacheFile, std::ios::binary);
    std::string Err;
    if (!Probe.is_open())
      Note("result store cold start: no file at " + Cfg.ResultCacheFile);
    else if (Probe.close(), Store.loadFile(Cfg.ResultCacheFile, &Err))
      Note("result store warm start: loaded " + std::to_string(Store.size()) +
           " entries from " + Cfg.ResultCacheFile);
    else
      Note("result store cold start: " + Err);
  }

  if (!Cfg.AccessLog.empty()) {
    Tele->AccessLog.open(Cfg.AccessLog, std::ios::app);
    if (!Tele->AccessLog.is_open()) {
      Note("access log unavailable: cannot open " + Cfg.AccessLog);
    } else {
      // Appending to an existing file: rotation measures total file size,
      // so start the byte counter at the current end.
      std::ofstream::pos_type End = Tele->AccessLog.tellp();
      Tele->AccessLogBytes =
          End > 0 ? static_cast<uint64_t>(End) : 0;
    }
  }

  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  engine::AnalysisRequest Base = Cfg.Defaults.toEngineRequest();
  Base.SharedCache = Cache.get();
  Base.UseQueryCache = Cache != nullptr;
  Base.Store = &Store;
  for (unsigned I = 0; I != Cfg.Workers; ++I)
    Engines.push_back(std::make_unique<engine::DependenceEngine>(Base));
  for (unsigned I = 0; I != Cfg.Workers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

Server::~Server() { stop(); }

/// One accepted connection. The fd closes when the last holder -- the
/// reader thread or an in-flight response callback -- drops its reference,
/// so a response can never write to a recycled descriptor.
struct Server::Conn {
  int Fd;
  std::mutex WriteMu;

  explicit Conn(int Fd) : Fd(Fd) {}
  ~Conn() { ::close(Fd); }

  void writeLine(std::string S) {
    S += '\n';
    std::lock_guard<std::mutex> Lock(WriteMu);
    std::size_t Off = 0;
    while (Off < S.size()) {
      ssize_t N = ::send(Fd, S.data() + Off, S.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return; // peer went away; the request was still fully processed
      Off += static_cast<std::size_t>(N);
    }
  }
};

void Server::requestStop() {
  StopFlag.store(true);
  // Unblock a socket accept loop (shutdown on a listening socket makes
  // accept() return) and any connection readers.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
  std::lock_guard<std::mutex> Lock(ConnsMu);
  for (const std::weak_ptr<Conn> &W : Conns)
    if (std::shared_ptr<Conn> C = W.lock())
      ::shutdown(C->Fd, SHUT_RD);
}

void Server::stop() {
  requestStop();
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Stopped)
      return;
    Stopped = true;
    Draining = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  if (Cache && !Cfg.CacheFile.empty()) {
    std::string Tmp = Cfg.CacheFile + ".tmp";
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (Out.is_open() && Cache->save(Out)) {
      Out.close();
      std::rename(Tmp.c_str(), Cfg.CacheFile.c_str());
    } else {
      std::remove(Tmp.c_str());
    }
  }
  if (!Cfg.ResultCacheFile.empty()) {
    // Same tmp+rename discipline as the cache file: a crash mid-save
    // leaves the previous generation intact, never a torn file.
    std::string Tmp = Cfg.ResultCacheFile + ".tmp";
    if (Store.saveFile(Tmp, nullptr))
      std::rename(Tmp.c_str(), Cfg.ResultCacheFile.c_str());
    else
      std::remove(Tmp.c_str());
  }
  writeMetricsFile(); // final exposition reflects the fully drained state
  if (Tele->AccessLog.is_open())
    Tele->AccessLog.flush();
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

void Server::submit(std::string Line,
                    std::function<void(std::string)> Respond) {
  Tele->RequestsTotal->add();

  json::Value Doc;
  std::string Err;
  if (!json::parse(Line, Doc, Err) || !Doc.isObject()) {
    Tele->ReqInvalid->add();
    Tele->RespParseError->add();
    Respond(renderServerError(false, 0, "parse_error",
                              Err.empty() ? "request is not a JSON object"
                                          : Err));
    return;
  }

  bool HasId = false;
  uint64_t Id = 0;
  if (const json::Value *V = Doc.get("id")) {
    if (!V->isNumber() || V->asNumber() < 0) {
      Tele->ReqInvalid->add();
      Tele->RespBadRequest->add();
      Respond(renderServerError(false, 0, "bad_request",
                                "\"id\" must be a non-negative number"));
      return;
    }
    HasId = true;
    Id = static_cast<uint64_t>(V->asNumber());
  }
  auto Fail = [&](const char *Code, const std::string &Message) {
    Tele->codeCounter(Code)->add();
    Respond(renderServerError(HasId, Id, Code, Message));
  };

  std::string Op = "analyze";
  if (const json::Value *V = Doc.get("op")) {
    if (!V->isString()) {
      Tele->ReqInvalid->add();
      return Fail("bad_request", "\"op\" must be a string");
    }
    Op = V->asString();
  }
  // The telemetry ops answer synchronously, bypassing the queue: an
  // operator probing a saturated server still gets an answer. Each op
  // counts its own request and response before snapshotting, so the
  // numbers it reports already include it and the per-op/per-code sums
  // equal requests_total inside every snapshot.
  if (Op == "health") {
    Tele->ReqHealth->add();
    Tele->RespOk->add();
    Respond(renderServerOp(HasId, Id, "health", "health", healthBody()));
    return;
  }
  if (Op == "metrics") {
    Tele->ReqMetrics->add();
    bool Reset = false;
    if (const json::Value *V = Doc.get("reset")) {
      if (!V->isBool())
        return Fail("bad_request", "\"reset\" must be a boolean");
      Reset = V->asBool();
    }
    Tele->RespOk->add();
    // The response always carries the PRE-reset snapshot (including this
    // request's own counts), so a measurement window reads its totals and
    // zeroes the instruments in one round trip. Gauges are levels and
    // survive the reset; the exposition file is rewritten after it, so
    // scrapers see the fresh window.
    std::string Body = metricsBody();
    if (Reset)
      Tele->Registry.reset();
    Respond(renderServerOp(HasId, Id, "metrics", "metrics", Body));
    writeMetricsFile();
    return;
  }
  if (Op == "shutdown") {
    Tele->ReqShutdown->add();
    Tele->RespOk->add();
    // The acknowledgment carries the final metrics snapshot: a client
    // that stops the server gets the process totals with the last
    // response line.
    Respond(renderServerOp(HasId, Id, "shutdown", "metrics", metricsBody()));
    requestStop();
    return;
  }
  if (Op != "analyze") {
    Tele->ReqInvalid->add();
    return Fail("bad_request", "unknown op \"" + Op + "\"");
  }
  Tele->ReqAnalyze->add();

  Request R;
  R.HasId = HasId;
  R.Id = Id;
  const json::Value *Src = Doc.get("source");
  if (!Src || !Src->isString())
    return Fail("bad_request", "\"source\" must be a string");
  R.Source = Src->asString();

  if (const json::Value *V = Doc.get("session")) {
    if (!V->isString())
      return Fail("bad_request", "\"session\" must be a string");
    R.Session = V->asString();
    if (R.Session.empty())
      return Fail("bad_request", "\"session\" must be non-empty");
  }

  R.Opts = Cfg.Defaults;
  if (const json::Value *O = Doc.get("options")) {
    if (!O->isObject())
      return Fail("bad_request", "\"options\" must be an object");
    if (!optionsFromJson(*O, R.Opts, Err))
      return Fail("bad_request", Err);
  }

  uint64_t DeadlineMs = Cfg.DeadlineMs;
  if (const json::Value *V = Doc.get("deadlineMs")) {
    if (!V->isNumber() || V->asNumber() < 0)
      return Fail("bad_request", "\"deadlineMs\" must be a non-negative number");
    DeadlineMs = static_cast<uint64_t>(V->asNumber());
  }
  if (DeadlineMs != 0) {
    R.HasDeadline = true;
    R.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(DeadlineMs);
  }
  R.Respond = std::move(Respond);
  R.Admitted = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Draining || StopFlag.load()) {
      Tele->RespShutdown->add();
      R.Respond(renderServerError(HasId, Id, "shutdown", "server stopping"));
      return;
    }
    if (Queue.size() >= Cfg.MaxQueue) {
      Tele->RespOverloaded->add();
      R.Respond(renderServerError(
          HasId, Id, "overloaded",
          "queue full (" + std::to_string(Cfg.MaxQueue) + " requests)"));
      return;
    }
    Queue.push_back(std::move(R));
    Tele->QueueDepth->add(1);
  }
  QueueCV.notify_one();
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(unsigned Index) {
  while (true) {
    Request R;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCV.wait(Lock, [&] { return !Queue.empty() || Draining; });
      if (Queue.empty())
        return; // draining and nothing left
      R = std::move(Queue.front());
      Queue.pop_front();
      Tele->QueueDepth->add(-1);
    }
    Tele->ActiveWorkers->add(1);
    runOne(R, Index);
    Tele->ActiveWorkers->add(-1);
    uint64_t Done =
        Tele->Completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Cfg.MetricsFile.empty() && Done % 64 == 0)
      writeMetricsFile();
  }
}

namespace {

struct RequestTimings {
  uint64_t QueueWaitUs = 0;
  uint64_t ParseUs = 0;
  uint64_t SolveUs = 0;
  uint64_t SerializeUs = 0;
  uint64_t TotalUs = 0;
};

struct AccessRecord {
  const char *Code = "ok";
  unsigned Worker = 0;
  unsigned Jobs = 0;
  uint64_t SatCalls = 0;
  uint64_t SatHits = 0;
  uint64_t SatMisses = 0;
  bool Coalesced = false;
  bool Slow = false;
  std::string TraceFile;
};

uint64_t elapsedUs(std::chrono::steady_clock::time_point From,
                   std::chrono::steady_clock::time_point To) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(To - From)
          .count());
}

/// The singleflight identity of a sessionless analyze request: every
/// option that flows into the engine run or the response document, plus
/// the source. Two requests with equal keys produce byte-identical
/// "result" sections (the engine's determinism guarantee), so they may
/// share one solve.
std::string coalesceKey(const AnalysisOptions &O, const std::string &Source) {
  std::string K;
  auto B = [&K](bool V) { K += V ? '1' : '0'; };
  B(O.Refine);
  B(O.Cover);
  B(O.Kill);
  B(O.QuickTests);
  B(O.Terminate);
  B(O.PairQuickTests);
  B(O.Incremental);
  B(O.ShareSnapshots);
  B(O.UseQueryCache);
  B(O.Pipeline);
  K += '|';
  K += std::to_string(O.Jobs);
  K += '|';
  K += std::to_string(O.SnapshotCacheCap);
  K += '\n';
  K += Source;
  return K;
}

} // namespace

void Server::runOne(Request &R, unsigned Index) {
  using Clock = std::chrono::steady_clock;
  RequestTimings T;
  AccessRecord Rec;
  Rec.Worker = Index;
  T.QueueWaitUs = elapsedUs(R.Admitted, Clock::now());

  // One access-log line per request that reached a worker (coalesced
  // followers included), written (like all accounting) before Respond so
  // a client that has seen the response can rely on the record existing.
  auto LogAccess = [&](const Request &Req, const AccessRecord &Rc,
                       const RequestTimings &Tm) {
    if (!Tele->AccessLog.is_open())
      return;
    std::string L = "{\"ts\": \"" + isoTimestamp() + "\", \"id\": " +
                    (Req.HasId ? std::to_string(Req.Id) : "null") +
                    ", \"session\": ";
    L += Req.Session.empty() ? "null"
                             : "\"" + json::escape(Req.Session) + "\"";
    L += std::string(", \"code\": \"") + Rc.Code + "\"";
    L += ", \"worker\": " + std::to_string(Rc.Worker);
    L += ", \"jobs\": " + std::to_string(Rc.Jobs);
    L += ", \"queueWaitMs\": " + msField(Tm.QueueWaitUs);
    L += ", \"parseMs\": " + msField(Tm.ParseUs);
    L += ", \"solveMs\": " + msField(Tm.SolveUs);
    L += ", \"serializeMs\": " + msField(Tm.SerializeUs);
    L += ", \"totalMs\": " + msField(Tm.TotalUs);
    L += ", \"satCalls\": " + std::to_string(Rc.SatCalls);
    L += ", \"satCacheHits\": " + std::to_string(Rc.SatHits);
    L += ", \"satCacheMisses\": " + std::to_string(Rc.SatMisses);
    L += std::string(", \"coalesced\": ") + (Rc.Coalesced ? "true" : "false");
    L += std::string(", \"slow\": ") + (Rc.Slow ? "true" : "false");
    if (!Rc.TraceFile.empty())
      L += ", \"traceFile\": \"" + json::escape(Rc.TraceFile) + "\"";
    L += "}";
    logAccessLine(L);
  };

  if (R.HasDeadline && Clock::now() >= R.Deadline) {
    T.TotalUs = elapsedUs(R.Admitted, Clock::now());
    Rec.Code = "deadline_exceeded";
    Tele->RespDeadline->add();
    LogAccess(R, Rec, T);
    R.Respond(renderServerError(R.HasId, R.Id, "deadline_exceeded",
                                "deadline passed while queued"));
    return;
  }

  // Singleflight: a sessionless analyze request that matches a solve
  // already in flight parks on it as a follower and frees this worker
  // slot immediately; the leader answers it (under the follower's own
  // id) when the shared solve completes. Session requests never
  // coalesce -- their baseline side effects are per-request.
  bool Leader = false;
  std::string CKey;
  if (Cfg.Coalesce && R.Session.empty()) {
    CKey = coalesceKey(R.Opts, R.Source);
    std::lock_guard<std::mutex> Lock(CoalesceMu);
    auto It = Inflight.find(CKey);
    if (It != Inflight.end()) {
      It->second.Waiters.push_back(Waiter{std::move(R), T.QueueWaitUs});
      return;
    }
    Inflight.emplace(CKey, InflightEntry{});
    Leader = true;
  }
  // Collects (and detaches) the followers parked on this leader. Runs
  // after the leader's outcome is known: a request arriving later finds
  // no in-flight entry and becomes a fresh leader.
  auto TakeFollowers = [&] {
    std::vector<Waiter> Fs;
    if (Leader) {
      std::lock_guard<std::mutex> Lock(CoalesceMu);
      auto It = Inflight.find(CKey);
      if (It != Inflight.end()) {
        Fs = std::move(It->second.Waiters);
        Inflight.erase(It);
      }
    }
    return Fs;
  };

  auto ParseStart = Clock::now();
  ir::AnalyzedProgram AP = ir::analyzeSource(R.Source);
  T.ParseUs = elapsedUs(ParseStart, Clock::now());
  if (!AP.ok()) {
    std::string Msg;
    for (const ir::Diagnostic &D : AP.Diags) {
      if (!Msg.empty())
        Msg += "; ";
      Msg += D.toString();
    }
    T.TotalUs = elapsedUs(R.Admitted, Clock::now());
    Rec.Code = "analysis_error";
    Tele->QueueWaitUs->observe(T.QueueWaitUs);
    Tele->ParseUs->observe(T.ParseUs);
    Tele->RequestUs->observe(T.TotalUs);
    Tele->RespAnalysisError->add();
    LogAccess(R, Rec, T);
    R.Respond(renderServerError(R.HasId, R.Id, "analysis_error", Msg));
    // Followers share the leader's verdict: the source is identical, so
    // it fails identically. Each gets its own error line and accounting.
    for (Waiter &W : TakeFollowers()) {
      RequestTimings FT;
      FT.QueueWaitUs = W.QueueWaitUs;
      FT.TotalUs = elapsedUs(W.R.Admitted, Clock::now());
      AccessRecord FRec;
      FRec.Code = "analysis_error";
      FRec.Worker = Index;
      FRec.Coalesced = true;
      Tele->ReqCoalesced->add();
      Tele->QueueWaitUs->observe(FT.QueueWaitUs);
      Tele->ParseUs->observe(FT.ParseUs);
      Tele->RequestUs->observe(FT.TotalUs);
      Tele->RespAnalysisError->add();
      LogAccess(W.R, FRec, FT);
      W.R.Respond(renderServerError(W.R.HasId, W.R.Id, "analysis_error",
                                    Msg));
    }
    return;
  }

  engine::DependenceEngine &Engine = *Engines[Index];
  engine::AnalysisRequest EReq = R.Opts.toEngineRequest();
  // Session requests run in delta mode: consult the session's retained
  // baseline (if any) and record a fresh one for the next request. The
  // shared_ptr keeps the prior baseline alive for the whole run even if
  // a concurrent request on the same session replaces it.
  std::shared_ptr<const engine::BaselineResult> Prior;
  if (!R.Session.empty()) {
    Prior = sessionBaseline(R.Session);
    EReq.Baseline = Prior.get();
    EReq.BuildBaseline = true;
  }
  // Every run -- stateless or session -- consults and feeds the global
  // result store; the engine checks its session baseline first.
  EReq.Store = &Store;
  Engine.applyOptions(EReq);

  // Slow-request capture: attach a per-request tracer to the (otherwise
  // trace-disabled) engine, keep the trace only when the request turns
  // out slow. Tracing is result-invisible; it costs only when --slow-ms
  // is set.
  std::optional<obs::Tracer> Tracer;
  if (Cfg.SlowMs > 0) {
    Tracer.emplace();
    Engine.setTracer(&*Tracer);
  }

  auto Start = Clock::now();
  engine::AnalysisResult Result = Engine.analyze(AP);
  T.SolveUs = elapsedUs(Start, Clock::now());
  Tele->EngAnalyses->add();
  if (Tracer)
    Engine.setTracer(nullptr);
  if (!R.Session.empty() && Result.Baseline)
    retainSession(R.Session, Result.Baseline);
  double WallMs = static_cast<double>(T.SolveUs) / 1000.0;

  auto SerializeStart = Clock::now();
  std::string ResultJson =
      renderResult(Result, R.Opts.Pipeline ? &AP : nullptr);
  std::string Metrics = renderMetrics(Result, Engine.jobs(), WallMs,
                                      /*ProfileJson=*/"", /*ExplainLog=*/"");
  std::string Line = renderServerOk(R.Id, ResultJson, Metrics);
  T.SerializeUs = elapsedUs(SerializeStart, Clock::now());
  T.TotalUs = elapsedUs(R.Admitted, Clock::now());

  // Engine-fed attribution: this run's own counters (not global deltas),
  // so at quiescence the registry totals equal the shared cache's global
  // counters -- the PR 6 accounting discipline, CI-checked.
  Tele->EngSatCalls->add(Result.Stats.SatisfiabilityCalls);
  Tele->EngSatHits->add(Result.Cache.SatHits);
  Tele->EngSatMisses->add(Result.Cache.SatMisses);
  Tele->EngGistHits->add(Result.Cache.GistHits);
  Tele->EngGistMisses->add(Result.Cache.GistMisses);
  Tele->EngSnapHits->add(Result.Stats.SnapshotCacheHits);
  Tele->EngSnapMisses->add(Result.Stats.SnapshotCacheMisses);
  Tele->EngQuickDecided->add(Result.Stats.QuickTestDecided);
  Tele->EngDeltaReused->add(Result.Stats.DeltaPairsReused);
  Tele->EngDeltaResolved->add(Result.Stats.DeltaPairsResolved);
  Tele->EngDeltaNew->add(Result.Stats.DeltaPairsNew);
  Tele->StoreHits->add(Result.Stats.ResultStoreHits);
  Tele->StoreMisses->add(Result.Stats.ResultStoreMisses);
  Tele->StoreEvictions->add(Result.Stats.ResultStoreEvictions);

  Tele->QueueWaitUs->observe(T.QueueWaitUs);
  Tele->ParseUs->observe(T.ParseUs);
  Tele->SolveUs->observe(T.SolveUs);
  Tele->SerializeUs->observe(T.SerializeUs);
  Tele->RequestUs->observe(T.TotalUs);
  Tele->AnalyzeOk->add();
  Tele->RespOk->add();

  Rec.Jobs = Engine.jobs();
  Rec.SatCalls = Result.Stats.SatisfiabilityCalls;
  Rec.SatHits = Result.Cache.SatHits;
  Rec.SatMisses = Result.Cache.SatMisses;
  Rec.Slow = Cfg.SlowMs > 0 && T.TotalUs >= Cfg.SlowMs * 1000;
  if (Rec.Slow && Tracer && !Cfg.SlowTraceDir.empty()) {
    uint64_t Seq = Tele->SlowSeq.fetch_add(1, std::memory_order_relaxed);
    std::string Path = Cfg.SlowTraceDir + "/slow-" + std::to_string(Seq) +
                       "-" + std::to_string(R.HasId ? R.Id : 0) +
                       ".trace.json";
    std::ofstream Out(Path, std::ios::trunc);
    if (Out.is_open()) {
      Out << Tracer->chromeTraceJson();
      Rec.TraceFile = Path;
    }
  }
  LogAccess(R, Rec, T);
  R.Respond(std::move(Line));

  // Answer the coalesced followers from the shared solve. Each follower
  // gets the leader's byte-identical "result" section under its own id,
  // with a metrics block showing zero engine work (the leader already
  // attributed the cache traffic; double-counting would break the
  // registry-vs-cache accounting cross-check).
  for (Waiter &W : TakeFollowers()) {
    auto FSerializeStart = Clock::now();
    engine::AnalysisResult Blank;
    std::string FMetrics =
        renderMetrics(Blank, Rec.Jobs, WallMs, /*ProfileJson=*/"",
                      /*ExplainLog=*/"");
    std::string FLine = renderServerOk(W.R.Id, ResultJson, FMetrics);
    RequestTimings FT;
    FT.QueueWaitUs = W.QueueWaitUs;
    FT.SolveUs = T.SolveUs; // the shared solve IS this request's solve
    FT.SerializeUs = elapsedUs(FSerializeStart, Clock::now());
    FT.TotalUs = elapsedUs(W.R.Admitted, Clock::now());
    AccessRecord FRec;
    FRec.Worker = Index;
    FRec.Jobs = Rec.Jobs;
    FRec.Coalesced = true;
    Tele->ReqCoalesced->add();
    Tele->QueueWaitUs->observe(FT.QueueWaitUs);
    Tele->ParseUs->observe(FT.ParseUs);
    Tele->SolveUs->observe(FT.SolveUs);
    Tele->SerializeUs->observe(FT.SerializeUs);
    Tele->RequestUs->observe(FT.TotalUs);
    Tele->AnalyzeOk->add();
    Tele->RespOk->add();
    LogAccess(W.R, FRec, FT);
    W.R.Respond(std::move(FLine));
  }
}

void Server::logAccessLine(const std::string &Line) {
  std::lock_guard<std::mutex> Lock(Tele->AccessMu);
  if (!Tele->AccessLog.is_open())
    return;
  // Buffered, not flushed per line: stop() flushes, so by the time the
  // process (or an in-process reader that called stop()) looks at the
  // file, every record is there. Crash loss is bounded by one buffer.
  Tele->AccessLog << Line << "\n";
  Tele->AccessLogBytes += Line.size() + 1;
  if (Cfg.AccessLogMaxMB == 0 ||
      Tele->AccessLogBytes < (Cfg.AccessLogMaxMB << 20))
    return;
  // Size-based rotation: flush everything buffered (records are written
  // whole under AccessMu, so the renamed file never ends mid-line),
  // move the file to PATH.1 (replacing the previous rotation), and open
  // a fresh PATH. On reopen failure the log goes quiet rather than
  // crashing the server.
  Tele->AccessLog.flush();
  Tele->AccessLog.close();
  std::string Rotated = Cfg.AccessLog + ".1";
  std::rename(Cfg.AccessLog.c_str(), Rotated.c_str());
  Tele->AccessLog.open(Cfg.AccessLog, std::ios::trunc);
  Tele->AccessLogBytes = 0;
}

//===----------------------------------------------------------------------===//
// Incremental sessions
//===----------------------------------------------------------------------===//

std::shared_ptr<const engine::BaselineResult>
Server::sessionBaseline(const std::string &Session) {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  auto It = Sessions.find(Session);
  if (It == Sessions.end())
    return nullptr;
  SessionLRU.splice(SessionLRU.begin(), SessionLRU, It->second.Recency);
  return It->second.Baseline;
}

void Server::retainSession(
    const std::string &Session,
    std::shared_ptr<const engine::BaselineResult> Baseline) {
  std::lock_guard<std::mutex> Lock(SessionsMu);
  auto It = Sessions.find(Session);
  if (It != Sessions.end()) {
    It->second.Baseline = std::move(Baseline);
    SessionLRU.splice(SessionLRU.begin(), SessionLRU, It->second.Recency);
    return;
  }
  SessionLRU.push_front(Session);
  Sessions.emplace(Session, SessionEntry{std::move(Baseline),
                                         SessionLRU.begin()});
  std::size_t Cap = Cfg.MaxSessions ? Cfg.MaxSessions : 1;
  while (Sessions.size() > Cap) {
    Sessions.erase(SessionLRU.back());
    SessionLRU.pop_back();
  }
  // Under SessionsMu, so set() never races another setter.
  Tele->LiveSessions->set(static_cast<int64_t>(Sessions.size()));
}

//===----------------------------------------------------------------------===//
// Telemetry exposition
//===----------------------------------------------------------------------===//

obs::MetricsSnapshot Server::metricsSnapshot() const {
  // Sampled gauges: refreshed here rather than maintained inline, since
  // cache occupancy only changes inside engine runs that don't know about
  // the server's registry.
  obs::set(Tele->CacheEntries,
           Cache ? static_cast<int64_t>(Cache->size()) : 0);
  obs::set(Tele->SnapshotEntries,
           Cache ? static_cast<int64_t>(Cache->snapshotCount()) : 0);
  obs::set(Tele->ResultStoreEntries, static_cast<int64_t>(Store.size()));
  return Tele->Registry.snapshot();
}

std::string Server::metricsBody() const {
  obs::MetricsSnapshot S = metricsSnapshot();
  uint64_t UptimeMs = elapsedUs(Tele->Epoch, std::chrono::steady_clock::now()) /
                      1000;
  // metricsJson renders {"counters": ..., "gauges": ..., "histograms":
  // ...}; splice its members into the op body alongside uptime and the
  // shared cache's own global counters (the external accounting
  // cross-check: at quiescence the omega_engine_* registry totals equal
  // these).
  std::string Inner = obs::metricsJson(S);
  QueryCacheStats CS = Cache ? Cache->stats() : QueryCacheStats{};
  std::string Out = "{\"uptimeMs\": " + std::to_string(UptimeMs) + ", ";
  Out += Inner.substr(1, Inner.size() - 2);
  Out += ", \"cache\": {\"satHits\": " + std::to_string(CS.SatHits) +
         ", \"satMisses\": " + std::to_string(CS.SatMisses) +
         ", \"gistHits\": " + std::to_string(CS.GistHits) +
         ", \"gistMisses\": " + std::to_string(CS.GistMisses) +
         ", \"entries\": " + std::to_string(Cache ? Cache->size() : 0) +
         ", \"snapshots\": " +
         std::to_string(Cache ? Cache->snapshotCount() : 0) + "}";
  // The store's own lifetime counters (lookup-level, unlike the
  // engine-attributed registry totals, which count materializations).
  engine::ResultStoreStats RS = Store.stats();
  Out += ", \"resultStore\": {\"hits\": " + std::to_string(RS.Hits) +
         ", \"misses\": " + std::to_string(RS.Misses) +
         ", \"evictions\": " + std::to_string(RS.Evictions) +
         ", \"entries\": " + std::to_string(RS.Entries) + "}}";
  return Out;
}

std::string Server::healthBody() const {
  std::size_t Depth;
  bool Stopping;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
    Stopping = Draining || StopFlag.load();
  }
  uint64_t UptimeMs = elapsedUs(Tele->Epoch, std::chrono::steady_clock::now()) /
                      1000;
  std::string Out = std::string("{\"status\": \"") +
                    (Stopping ? "draining" : "ok") + "\"";
  Out += ", \"workers\": " + std::to_string(Cfg.Workers);
  Out += ", \"activeWorkers\": " +
         std::to_string(Tele->ActiveWorkers->value());
  Out += ", \"queueDepth\": " + std::to_string(Depth);
  Out += ", \"queueCapacity\": " + std::to_string(Cfg.MaxQueue);
  Out += ", \"uptimeMs\": " + std::to_string(UptimeMs);
  Out += ", \"requestsTotal\": " +
         std::to_string(Tele->RequestsTotal->value());
  Out += ", \"liveSessions\": " + std::to_string(Tele->LiveSessions->value());
  Out += ", \"sessionCapacity\": " + std::to_string(Cfg.MaxSessions);
  Out += ", \"cacheEntries\": " + std::to_string(Cache ? Cache->size() : 0);
  Out += ", \"resultStoreEntries\": " + std::to_string(Store.size());
  Out += ", \"cacheNote\": \"" + json::escape(StartupNote) + "\"}";
  return Out;
}

void Server::writeMetricsFile() {
  if (Cfg.MetricsFile.empty())
    return;
  std::string Text = obs::prometheusText(metricsSnapshot());
  // Atomic rewrite, same pattern as the cache-file save: a scraper never
  // sees a torn exposition.
  std::lock_guard<std::mutex> Lock(Tele->FileMu);
  std::string Tmp = Cfg.MetricsFile + ".tmp";
  std::ofstream Out(Tmp, std::ios::trunc);
  if (Out.is_open()) {
    Out << Text;
    Out.close();
    std::rename(Tmp.c_str(), Cfg.MetricsFile.c_str());
  } else {
    std::remove(Tmp.c_str());
  }
}

//===----------------------------------------------------------------------===//
// stdin JSONL mode
//===----------------------------------------------------------------------===//

int Server::runStdin(std::istream &In, std::ostream &Out) {
  std::mutex WriteMu;
  std::string Line;
  while (!stopRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    submit(std::move(Line), [&WriteMu, &Out](std::string Resp) {
      std::lock_guard<std::mutex> Lock(WriteMu);
      Out << Resp << "\n";
      Out.flush();
    });
    Line.clear();
  }
  stop(); // drains: every submitted request is answered before we return
  return 0;
}

//===----------------------------------------------------------------------===//
// Unix socket mode
//===----------------------------------------------------------------------===//

int Server::runSocket(const std::string &Path, std::ostream &Log) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Log << "error: socket path too long: " << Path << "\n";
    stop();
    return 1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Log << "error: socket(): " << std::strerror(errno) << "\n";
    stop();
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  Path.copy(Addr.sun_path, sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Log << "error: bind/listen on " << Path << ": " << std::strerror(errno)
        << "\n";
    ::close(Fd);
    stop();
    return 1;
  }
  ListenFd.store(Fd);
  Log << "omega-serve: listening on " << Path << "\n";
  Log.flush();

  std::vector<std::thread> Readers;
  while (true) {
    int CFd = ::accept(Fd, nullptr, nullptr);
    if (CFd < 0)
      break; // requestStop() shut the listening socket down
    auto C = std::make_shared<Conn>(CFd);
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::weak_ptr<Conn> &W) {
                                   return W.expired();
                                 }),
                  Conns.end());
      Conns.push_back(C);
    }
    Readers.emplace_back([this, C] {
      std::string Buf;
      char Chunk[4096];
      while (true) {
        ssize_t N = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
        if (N <= 0)
          break;
        Buf.append(Chunk, static_cast<std::size_t>(N));
        std::size_t Pos;
        while ((Pos = Buf.find('\n')) != std::string::npos) {
          std::string Line = Buf.substr(0, Pos);
          Buf.erase(0, Pos + 1);
          if (Line.empty())
            continue;
          submit(std::move(Line),
                 [C](std::string Resp) { C->writeLine(std::move(Resp)); });
        }
      }
    });
  }
  int Listen = ListenFd.exchange(-1);
  if (Listen >= 0)
    ::close(Listen);
  else
    ::close(Fd);
  for (std::thread &T : Readers)
    T.join();
  stop(); // in-flight responses still reach their Conn via shared_ptr
  ::unlink(Path.c_str());
  return 0;
}
