//===- api/Response.h - The versioned machine-readable response ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schema 4 of the machine-readable analysis output, shared byte-for-byte
/// by `omega-analyze --json` and omega-serve responses (the checked-in
/// JSON schema file schema/analysis_response.schema.json describes it and
/// CI validates both producers against it).
///
/// The document separates what is deterministic from what is not:
///
///   {"schema": 4, "ok": true, "result": {...}, "metrics": {...}}
///
///  * "result" holds the structural analysis outcome -- dependences,
///    splits, pair and kill records without timings. The engine guarantees
///    it is identical for every Jobs value and cache state, so the serving
///    stack's bit-identity gate (server response vs one-shot CLI, warm vs
///    cold cache) diffs this section as raw bytes.
///  * "metrics" holds per-run execution data -- jobs, wall time, solver
///    counters, cache traffic, optional profile/explain -- which may vary
///    run to run (a warm cache legitimately reports hits where a cold one
///    reports misses).
///
/// Schema 1 (the PR 1-5 format) interleaved timings with structure and
/// had no version marker; it is gone. Schema 3 extends schema 2 with the
/// edit-incremental counters: four new "stats" entries (snapshotEvictions
/// and the deltaPairs* classification) and, when a baseline was consulted,
/// an optional "delta" object under "metrics". Schema 4 adds an optional
/// "pipeline" array to "result" (requests opting in with --pipeline /
/// "pipeline": true): per loop, the PS-DSWP stage partition, privatized
/// arrays, and the kills that enabled the parallel stage. Like the rest
/// of "result" it is fully deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_API_RESPONSE_H
#define OMEGA_API_RESPONSE_H

#include "engine/DependenceEngine.h"

#include <cstdint>
#include <string>

namespace omega {
namespace ir {
struct AnalyzedProgram;
} // namespace ir

namespace api {

/// The version stamped into every response document.
constexpr int SchemaVersion = 4;

/// Renders the deterministic structural section: flow/anti/output
/// dependences with their splits, pair records (hasFlow, usedGeneralTest,
/// splitVectors), and kill records (usedOmega, killed). Single line, no
/// timings -- byte-identical for every Jobs value and cache state. When
/// \p PipelineAP is non-null (the request asked for --pipeline), a
/// "pipeline" array is appended: one entry per loop with the planned
/// stage partition.
std::string renderResult(const analysis::AnalysisResult &R,
                         const ir::AnalyzedProgram *PipelineAP = nullptr);

/// Renders the per-run metrics section: jobs, wall time, the full merged
/// OmegaStats, this run's cache traffic, and (when requested) the profile
/// report and decision-explain log.
std::string renderMetrics(const engine::AnalysisResult &R, unsigned Jobs,
                          double WallMs, const std::string &ProfileJson,
                          const std::string &ExplainLog);

/// The complete CLI document: {"schema": 4, "ok": true, "result": R,
/// "metrics": M} plus a trailing newline.
std::string renderDocument(const std::string &Result,
                           const std::string &Metrics);

/// One omega-serve response line (no trailing newline): the CLI document
/// with the request id spliced in after "schema".
std::string renderServerOk(uint64_t Id, const std::string &Result,
                           const std::string &Metrics);

/// A typed error response line: {"schema": 4, "id": ..., "ok": false,
/// "error": {"code": ..., "message": ...}}. \p HasId distinguishes a
/// request whose id never parsed (id becomes null).
std::string renderServerError(bool HasId, uint64_t Id, const std::string &Code,
                              const std::string &Message);

/// An operational response line (the telemetry ops: metrics, health, and
/// the shutdown acknowledgment): {"schema": 4, "id": ..., "ok": true,
/// "op": OP, BODYKEY: BODY}. \p Body is pre-rendered JSON
/// (schema/metrics_response.schema.json describes the three documents).
std::string renderServerOp(bool HasId, uint64_t Id, const std::string &Op,
                           const std::string &BodyKey, const std::string &Body);

} // namespace api
} // namespace omega

#endif // OMEGA_API_RESPONSE_H
