//===- api/Options.cpp ----------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "api/Options.h"

#include "api/Json.h"

#include <cstdio>
#include <stdexcept>

using namespace omega;
using namespace omega::api;

engine::AnalysisRequest AnalysisOptions::toEngineRequest() const {
  engine::AnalysisRequest R;
  R.Refine = Refine;
  R.Cover = Cover;
  R.Kill = Kill;
  R.QuickTests = QuickTests;
  R.Terminate = Terminate;
  R.PairQuickTests = PairQuickTests;
  R.Incremental = Incremental;
  R.ShareSnapshots = ShareSnapshots;
  R.Jobs = Jobs;
  R.UseQueryCache = UseQueryCache;
  return R;
}

const std::vector<OptionSpec> &omega::api::optionSpecs() {
  static const unsigned AS = ToolAnalyze | ToolServe;
  static const unsigned ACS = ToolAnalyze | ToolCalc | ToolServe;
  // The one table: flag spelling, JSON request key (null = CLI-only),
  // applicable tools, value arity, metavar, help line. AnalysisOptions'
  // member initializers are the matching defaults.
  static const std::vector<OptionSpec> Specs = {
      {"--jobs", "jobs", AS, true, "N",
       "shard each analysis over N worker threads (0 = hardware); "
       "results are identical for every N"},
      {"--json", nullptr, ToolAnalyze, false, nullptr,
       "machine-readable schema-4 output instead of tables"},
      {"--trace", nullptr, ToolAnalyze, true, "FILE",
       "record a Chrome trace_event JSON of the run"},
      {"--profile", "profile", AS, false, nullptr,
       "aggregated profile report; --profile=json for JSON "
       "(always JSON in server responses)"},
      {"--explain", "explain", AS, false, nullptr,
       "per array pair, which mechanism decided the outcome"},
      {"--stats", nullptr, ToolAnalyze, false, nullptr,
       "per-pair cost classes and timings (Figure 6 style)"},
      {"--all", nullptr, ToolAnalyze, false, nullptr,
       "also print anti and output dependences"},
      {"--compress", nullptr, ToolAnalyze, false, nullptr,
       "compress split rows into the paper's display vectors"},
      {"--no-refine", "refine", AS, false, nullptr,
       "disable Section 4.4 distance refinement"},
      {"--no-cover", "cover", AS, false, nullptr,
       "disable Section 4.2 coverage"},
      {"--no-kill", "kill", AS, false, nullptr,
       "disable Section 4.1/4.2 kill analysis"},
      {"--no-quick", "quick", AS, false, nullptr,
       "disable the Section 4.5 pipeline screens"},
      {"--terminate", "terminate", AS, false, nullptr,
       "enable the terminating-write extension"},
      {"--no-quicktests", "quicktests", ACS, false, nullptr,
       "disable the ZIV/GCD/bounds pair pre-filter (ablation)"},
      {"--no-incremental", "incremental", ACS, false, nullptr,
       "disable per-pair elimination snapshots (ablation)"},
      {"--no-snapshot-sharing", "snapshotSharing", AS, false, nullptr,
       "do not reuse elimination snapshots through the query cache"},
      {"--no-cache", nullptr, AS, false, nullptr,
       "disable the sat/gist query cache entirely"},
      {"--cache-file", nullptr, AS, true, "PATH",
       "warm-start: load the persisted query cache from PATH if it "
       "exists, save it back on exit"},
      {"--snapshot-cache-cap", nullptr, AS, true, "N",
       "bound the cache's elimination-snapshot store to N entries, "
       "evicting least-recently-used beyond that (0 = unbounded)"},
      {"--result-cache-file", nullptr, AS, true, "PATH",
       "warm-start the global pair-result store from PATH if it exists "
       "and save it back on exit (corrupt or version-skewed files are "
       "ignored with a warning: cold start, never a wrong answer)"},
      {"--result-store-cap", nullptr, AS, true, "N",
       "bound the global pair-result store to N solved outcomes, "
       "evicting least-recently-used beyond that (0 = unbounded)"},
      {"--baseline", nullptr, ToolAnalyze, true, "PATH",
       "incremental re-analysis: reuse results from the baseline file "
       "for pairs whose fingerprints are unchanged (byte-identical "
       "output either way)"},
      {"--save-baseline", nullptr, ToolAnalyze, true, "PATH",
       "record this run's results as a baseline file for a future "
       "--baseline run"},
      {"--transforms", nullptr, ToolAnalyze, false, nullptr,
       "report transformation opportunities"},
      {"--restraints", nullptr, ToolAnalyze, false, nullptr,
       "print Section 2.1.2 restraint vectors"},
      {"--schedule", nullptr, ToolAnalyze, false, nullptr,
       "print a parallel schedule"},
      {"--run", nullptr, ToolAnalyze, false, nullptr,
       "interpret the program (needs every symbol bound via --sym)"},
      {"--pipeline", "pipeline", AS, false, nullptr,
       "plan a PS-DSWP pipeline partition per loop over the live "
       "dependence PDG (stages, parallel stage, enabling kills)"},
      {"--socket", nullptr, ToolServe, true, "PATH",
       "listen on a Unix domain socket instead of stdin JSONL"},
      {"--workers", nullptr, ToolServe, true, "N",
       "concurrent requests in flight (each owns one engine)"},
      {"--max-queue", nullptr, ToolServe, true, "N",
       "admission bound: queued requests beyond N are shed with an "
       "'overloaded' error response"},
      {"--deadline-ms", nullptr, ToolServe, true, "MS",
       "default per-request deadline; overdue queued requests are shed "
       "with 'deadline_exceeded' (0 = none)"},
      {"--max-sessions", nullptr, ToolServe, true, "N",
       "incremental sessions whose baselines stay retained, LRU-evicted "
       "beyond N (requests opt in with a \"session\" key)"},
      {"--no-coalesce", nullptr, ToolServe, false, nullptr,
       "do not coalesce concurrent identical sessionless requests onto "
       "one engine solve"},
      {"--metrics-file", nullptr, ToolServe, true, "PATH",
       "rewrite PATH atomically with a Prometheus text-format metrics "
       "exposition (on every metrics op, periodically, and at shutdown)"},
      {"--access-log", nullptr, ToolServe, true, "PATH",
       "append one JSONL record per analyzed request to PATH (latency "
       "decomposition, cache traffic, response code)"},
      {"--slow-ms", nullptr, ToolServe, true, "MS",
       "trace requests taking >= MS ms and flag them in the access log "
       "(0 = off); with --slow-trace-dir the Chrome trace is saved"},
      {"--slow-trace-dir", nullptr, ToolServe, true, "DIR",
       "directory for per-request Chrome traces of slow requests "
       "(requires --slow-ms)"},
      {"--access-log-max-mb", nullptr, ToolServe, true, "MB",
       "rotate the access log once it exceeds MB megabytes: the file is "
       "flushed and atomically renamed to PATH.1, and logging continues "
       "in a fresh PATH (one rotation kept; 0 = never rotate)"},
      {"--latency-buckets-us", nullptr, ToolServe, true, "US,...",
       "request-latency histogram bucket upper bounds in microseconds, "
       "comma-separated and strictly increasing (default "
       "100,250,...,1000000)"},
  };
  return Specs;
}

namespace {

bool parseUnsigned(const std::string &V, uint64_t &Out) {
  if (V.empty())
    return false;
  try {
    std::size_t End = 0;
    unsigned long long U = std::stoull(V, &End);
    if (End != V.size())
      return false;
    Out = U;
    return true;
  } catch (...) {
    return false;
  }
}

/// Applies one shared option (by its CLI spelling) to \p O. \p Val is the
/// flag's value for value-taking options, or "json" for --profile=json.
bool applyFlag(AnalysisOptions &O, const std::string &Flag,
               const std::string &Val, std::string &Err) {
  auto BadNum = [&] {
    Err = "bad value for " + Flag + ": '" + Val + "'";
    return false;
  };
  uint64_t U = 0;
  if (Flag == "--jobs") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.Jobs = static_cast<unsigned>(U);
  } else if (Flag == "--json")
    O.Json = true;
  else if (Flag == "--trace")
    O.TraceFile = Val;
  else if (Flag == "--profile")
    O.Profile = Val == "json" ? AnalysisOptions::ProfileJson
                              : AnalysisOptions::ProfileText;
  else if (Flag == "--explain")
    O.Explain = true;
  else if (Flag == "--stats")
    O.Stats = true;
  else if (Flag == "--all")
    O.All = true;
  else if (Flag == "--compress")
    O.Compress = true;
  else if (Flag == "--no-refine")
    O.Refine = false;
  else if (Flag == "--no-cover")
    O.Cover = false;
  else if (Flag == "--no-kill")
    O.Kill = false;
  else if (Flag == "--no-quick")
    O.QuickTests = false;
  else if (Flag == "--terminate")
    O.Terminate = true;
  else if (Flag == "--no-quicktests")
    O.PairQuickTests = false;
  else if (Flag == "--no-incremental")
    O.Incremental = false;
  else if (Flag == "--no-snapshot-sharing")
    O.ShareSnapshots = false;
  else if (Flag == "--no-cache")
    O.UseQueryCache = false;
  else if (Flag == "--cache-file")
    O.CacheFile = Val;
  else if (Flag == "--snapshot-cache-cap") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.SnapshotCacheCap = U;
  } else if (Flag == "--result-cache-file")
    O.ResultCacheFile = Val;
  else if (Flag == "--result-store-cap") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.ResultStoreCap = U;
  } else if (Flag == "--baseline")
    O.BaselineFile = Val;
  else if (Flag == "--save-baseline")
    O.SaveBaselineFile = Val;
  else if (Flag == "--transforms")
    O.Transforms = true;
  else if (Flag == "--restraints")
    O.Restraints = true;
  else if (Flag == "--schedule")
    O.Schedule = true;
  else if (Flag == "--run")
    O.Run = true;
  else if (Flag == "--pipeline")
    O.Pipeline = true;
  else if (Flag == "--socket")
    O.SocketPath = Val;
  else if (Flag == "--workers") {
    if (!parseUnsigned(Val, U) || U == 0)
      return BadNum();
    O.ServeWorkers = static_cast<unsigned>(U);
  } else if (Flag == "--max-queue") {
    if (!parseUnsigned(Val, U) || U == 0)
      return BadNum();
    O.MaxQueue = static_cast<unsigned>(U);
  } else if (Flag == "--deadline-ms") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.DeadlineMs = U;
  } else if (Flag == "--max-sessions") {
    if (!parseUnsigned(Val, U) || U == 0)
      return BadNum();
    O.MaxSessions = static_cast<unsigned>(U);
  } else if (Flag == "--no-coalesce")
    O.Coalesce = false;
  else if (Flag == "--metrics-file")
    O.MetricsFile = Val;
  else if (Flag == "--access-log")
    O.AccessLogFile = Val;
  else if (Flag == "--slow-ms") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.SlowMs = U;
  } else if (Flag == "--slow-trace-dir")
    O.SlowTraceDir = Val;
  else if (Flag == "--access-log-max-mb") {
    if (!parseUnsigned(Val, U))
      return BadNum();
    O.AccessLogMaxMB = U;
  } else if (Flag == "--latency-buckets-us") {
    std::vector<uint64_t> Bounds;
    std::size_t Pos = 0;
    while (Pos <= Val.size()) {
      std::size_t Comma = Val.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Val.size();
      if (!parseUnsigned(Val.substr(Pos, Comma - Pos), U))
        return BadNum();
      if (!Bounds.empty() && U <= Bounds.back()) {
        Err = "--latency-buckets-us bounds must be strictly increasing";
        return false;
      }
      Bounds.push_back(U);
      Pos = Comma + 1;
    }
    if (Bounds.empty())
      return BadNum();
    O.LatencyBucketsUs = std::move(Bounds);
  } else {
    Err = "unhandled shared option " + Flag;
    return false;
  }
  return true;
}

/// Applies one JSON request-option key. Booleans follow the positive
/// sense of the key ("refine": false turns refinement off), numbers must
/// be non-negative integers.
bool applyJsonKey(AnalysisOptions &O, const std::string &Key,
                  const json::Value &V, std::string &Err) {
  auto Bool = [&](bool &Slot) {
    if (!V.isBool()) {
      Err = "option '" + Key + "' expects a boolean";
      return false;
    }
    Slot = V.asBool();
    return true;
  };
  if (Key == "jobs") {
    if (!V.isNumber() || V.asNumber() < 0 ||
        V.asNumber() != static_cast<double>(V.asInt())) {
      Err = "option 'jobs' expects a non-negative integer";
      return false;
    }
    O.Jobs = static_cast<unsigned>(V.asInt());
    return true;
  }
  if (Key == "profile") {
    if (!V.isBool()) {
      Err = "option 'profile' expects a boolean";
      return false;
    }
    O.Profile =
        V.asBool() ? AnalysisOptions::ProfileJson : AnalysisOptions::ProfileOff;
    return true;
  }
  if (Key == "explain") {
    if (!V.isBool()) {
      Err = "option 'explain' expects a boolean";
      return false;
    }
    O.Explain = V.asBool();
    return true;
  }
  if (Key == "refine")
    return Bool(O.Refine);
  if (Key == "cover")
    return Bool(O.Cover);
  if (Key == "kill")
    return Bool(O.Kill);
  if (Key == "quick")
    return Bool(O.QuickTests);
  if (Key == "terminate")
    return Bool(O.Terminate);
  if (Key == "quicktests")
    return Bool(O.PairQuickTests);
  if (Key == "incremental")
    return Bool(O.Incremental);
  if (Key == "snapshotSharing")
    return Bool(O.ShareSnapshots);
  if (Key == "pipeline")
    return Bool(O.Pipeline);
  Err = "unknown option '" + Key + "'";
  return false;
}

} // namespace

bool omega::api::parseArgs(const std::vector<std::string> &Args, unsigned Tool,
                           ParsedArgs &Out, std::string &Err) {
  const std::vector<OptionSpec> &Specs = optionSpecs();
  for (std::size_t I = 0; I != Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--help" || Arg == "-h") {
      Out.Help = true;
      continue;
    }
    if (Arg.size() < 3 || Arg.compare(0, 2, "--") != 0) {
      Out.Rest.push_back(Arg);
      continue;
    }
    std::string Flag = Arg;
    std::string Val;
    bool HasInlineVal = false;
    if (std::size_t Eq = Arg.find('='); Eq != std::string::npos) {
      Flag = Arg.substr(0, Eq);
      Val = Arg.substr(Eq + 1);
      HasInlineVal = true;
    }
    const OptionSpec *Spec = nullptr;
    for (const OptionSpec &S : Specs)
      if ((S.Tools & Tool) && Flag == S.Flag) {
        Spec = &S;
        break;
      }
    if (!Spec) {
      Out.Rest.push_back(Arg);
      continue;
    }
    if (Spec->TakesValue) {
      if (!HasInlineVal) {
        if (I + 1 == Args.size()) {
          Err = Flag + " requires a value";
          return false;
        }
        Val = Args[++I];
      }
    } else if (HasInlineVal) {
      // Only --profile takes an optional =json selector.
      if (Flag != "--profile" || Val != "json") {
        Err = Flag + " does not take a value";
        return false;
      }
    }
    if (!applyFlag(Out.Options, Flag, Val, Err))
      return false;
  }
  return true;
}

bool omega::api::optionsFromJson(const json::Value &Obj, AnalysisOptions &Opts,
                                 std::string &Err) {
  if (!Obj.isObject()) {
    Err = "\"options\" must be an object";
    return false;
  }
  for (const auto &[Key, V] : Obj.asObject())
    if (!applyJsonKey(Opts, Key, V, Err))
      return false;
  return true;
}

std::string omega::api::optionsHelp(unsigned Tool) {
  std::string Out;
  for (const OptionSpec &S : optionSpecs()) {
    if (!(S.Tools & Tool))
      continue;
    std::string Left = "  ";
    Left += S.Flag;
    if (S.TakesValue && S.Meta)
      Left += std::string(" ") + S.Meta;
    if (std::string(S.Flag) == "--profile")
      Left += "[=json]";
    if (Left.size() < 26)
      Left.resize(26, ' ');
    else
      Left += ' ';
    // Wrap the help text at 78 columns, continuation lines indented to
    // the help column.
    std::string Help = S.Help;
    std::size_t Width = 78 - 26;
    while (true) {
      if (Help.size() <= Width) {
        Out += Left + Help + "\n";
        break;
      }
      std::size_t Break = Help.rfind(' ', Width);
      if (Break == std::string::npos || Break == 0)
        Break = Width;
      Out += Left + Help.substr(0, Break) + "\n";
      Help = Help.substr(Break + 1);
      Left.assign(26, ' ');
    }
  }
  return Out;
}
