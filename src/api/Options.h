//===- api/Options.h - One option surface for every analysis front end ---===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Before this layer existed, each tool grew its own flag soup:
/// omega-analyze parsed --jobs/--json/--trace/... by hand, omega-calc had
/// script directives, and a server would have invented a third spelling.
/// AnalysisOptions is the single request surface shared by omega-analyze,
/// omega-calc, and omega-serve -- one struct, one defaults table, one
/// --help text source, and one JSON spelling (the "options" object of an
/// omega-serve request uses the same descriptor table as the CLI flags,
/// so `--no-refine` and `"refine": false` can never drift apart).
///
/// Parsing is table-driven: optionSpecs() enumerates every option with its
/// CLI spelling, JSON key, the tools it applies to, and its help line.
/// Tool-specific positional arguments (the input file, --sym bindings)
/// stay in the tools; everything request-shaped lives here.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_API_OPTIONS_H
#define OMEGA_API_OPTIONS_H

#include "engine/DependenceEngine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace omega {
namespace api {

namespace json {
class Value;
} // namespace json

/// Which front ends an option applies to.
enum ToolMask : unsigned {
  ToolAnalyze = 1u << 0,
  ToolCalc = 1u << 1,
  ToolServe = 1u << 2,
};

/// The unified request options: everything a front end may ask of one
/// analysis. Defaults here ARE the defaults table -- the CLI parser, the
/// JSON request parser, and the help text all derive from this struct plus
/// optionSpecs().
struct AnalysisOptions {
  // -- Section 4 pipeline toggles (engine::AnalysisRequest) --------------
  bool Refine = true;     ///< --no-refine        / "refine": false
  bool Cover = true;      ///< --no-cover         / "cover": false
  bool Kill = true;       ///< --no-kill          / "kill": false
  bool QuickTests = true; ///< --no-quick         / "quick": false
  bool Terminate = false; ///< --terminate        / "terminate": true

  // -- solver tiers ------------------------------------------------------
  bool PairQuickTests = true; ///< --no-quicktests / "quicktests": false
  bool Incremental = true;    ///< --no-incremental / "incremental": false
  /// Snapshot reuse policy: share per-pair elimination snapshots through
  /// the query cache so identical pairs (across requests, or across
  /// repeated analyses) skip the reduction. Requires the cache.
  bool ShareSnapshots = true; ///< --no-snapshot-sharing / "snapshotSharing"

  // -- execution ---------------------------------------------------------
  unsigned Jobs = 1;         ///< --jobs N (0 = hardware)
  bool UseQueryCache = true; ///< --no-cache
  std::string CacheFile;     ///< --cache-file=PATH persistence
  /// Snapshot-store bound: at most N elimination snapshots stay resident
  /// in the query cache, LRU-evicted beyond that (0 = unbounded).
  uint64_t SnapshotCacheCap = 0; ///< --snapshot-cache-cap N

  // -- incremental re-analysis ------------------------------------------
  std::string BaselineFile;     ///< --baseline PATH (analyze-only)
  std::string SaveBaselineFile; ///< --save-baseline PATH (analyze-only)

  // -- global result store ----------------------------------------------
  /// Persist the cross-request pair-result store: load from PATH at
  /// startup (corruption -> warned cold start), save back on exit.
  std::string ResultCacheFile; ///< --result-cache-file=PATH
  /// Result-store bound: at most N solved pair/kill-group outcomes stay
  /// resident, LRU-evicted beyond that (0 = unbounded).
  uint64_t ResultStoreCap = 1 << 16; ///< --result-store-cap N

  // -- output selection --------------------------------------------------
  bool All = false;      ///< --all: also anti/output tables
  bool Compress = false; ///< --compress split rows
  bool Stats = false;    ///< --stats: per-pair cost classes
  bool Json = false;     ///< --json: schema-4 machine output
  enum ProfileMode : uint8_t { ProfileOff, ProfileText, ProfileJson };
  ProfileMode Profile = ProfileOff; ///< --profile[=json] / "profile": true
  bool Explain = false;             ///< --explain
  std::string TraceFile;            ///< --trace=FILE (Chrome trace JSON)

  // -- analyze-only extras ----------------------------------------------
  bool Transforms = false; ///< --transforms
  bool Restraints = false; ///< --restraints
  bool Schedule = false;   ///< --schedule
  bool Run = false;        ///< --run (interpret)

  // -- pipeline partitioning --------------------------------------------
  /// Plan a PS-DSWP pipeline partition for every loop (stages over the
  /// SCC-DAG of the live dependence PDG) and report it: staged schedule
  /// text for omega-analyze, the schema-4 "pipeline" result block for
  /// JSON and serve responses.
  bool Pipeline = false; ///< --pipeline / "pipeline": true

  // -- serve-only --------------------------------------------------------
  std::string SocketPath;        ///< --socket=PATH (default: stdin JSONL)
  unsigned ServeWorkers = 4;     ///< --workers N concurrent requests
  unsigned MaxQueue = 64;        ///< --max-queue N admission bound
  uint64_t DeadlineMs = 0;       ///< --deadline-ms N (0 = none)
  /// Incremental sessions whose baselines stay retained (LRU beyond N).
  unsigned MaxSessions = 64;     ///< --max-sessions N
  /// Singleflight: concurrent sessionless requests with identical source
  /// and options share one solve and response document.
  bool Coalesce = true;          ///< --no-coalesce

  // -- serve-only telemetry ---------------------------------------------
  std::string MetricsFile;   ///< --metrics-file=PATH Prometheus exposition
  std::string AccessLogFile; ///< --access-log=PATH JSONL request records
  /// Requests at or above this wall time are flagged slow (and traced
  /// when SlowTraceDir is set). 0 disables slow-request capture.
  uint64_t SlowMs = 0;          ///< --slow-ms MS
  std::string SlowTraceDir;     ///< --slow-trace-dir=DIR Chrome traces
  /// Rotate the access log (rename to PATH.1) when it exceeds this many
  /// megabytes; 0 disables rotation.
  uint64_t AccessLogMaxMB = 0;  ///< --access-log-max-mb MB
  /// Request-latency histogram bucket upper bounds in microseconds,
  /// strictly increasing; empty uses the server's built-in boundaries.
  std::vector<uint64_t> LatencyBucketsUs; ///< --latency-buckets-us US,...

  /// Lowers the option set into the engine's request struct.
  engine::AnalysisRequest toEngineRequest() const;
};

/// One entry of the shared option table.
struct OptionSpec {
  const char *Flag;    ///< CLI spelling without value ("--jobs")
  const char *JsonKey; ///< request-object key, null if CLI-only
  unsigned Tools;      ///< ToolMask union
  bool TakesValue;     ///< --flag N / --flag=V
  const char *Meta;    ///< value placeholder for help ("N"), null if none
  const char *Help;    ///< one-line help (shared by every tool)
};

/// The full option table (the single source of flag spellings, JSON keys
/// and help lines).
const std::vector<OptionSpec> &optionSpecs();

/// Result of parsing a CLI argument vector.
struct ParsedArgs {
  AnalysisOptions Options;
  /// Arguments the shared table did not consume, in order (tool-specific
  /// flags and positionals like the input file).
  std::vector<std::string> Rest;
  bool Help = false; ///< --help / -h was seen
};

/// Parses \p Args (argv[1..]) against the shared table for \p Tool.
/// Unrecognized "--flag" arguments and positionals are passed through in
/// Rest for the tool to interpret. Returns false and sets \p Err on a
/// malformed shared option (bad number, missing value).
bool parseArgs(const std::vector<std::string> &Args, unsigned Tool,
               ParsedArgs &Out, std::string &Err);

/// Applies a JSON "options" object to \p Opts using the same table
/// (ToolServe scope). Unknown keys or mistyped values fail with \p Err.
bool optionsFromJson(const json::Value &Obj, AnalysisOptions &Opts,
                     std::string &Err);

/// The shared flag help text for \p Tool, one option per line, derived
/// from the table (so every tool's --help agrees with the parser).
std::string optionsHelp(unsigned Tool);

} // namespace api
} // namespace omega

#endif // OMEGA_API_OPTIONS_H
