//===- api/Json.cpp -------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace omega::api::json;

const Value *Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursion bound for nested arrays/objects: generous for any real
/// request document, small enough that hostile input ("[[[[...") fails
/// with a clean error instead of exhausting the stack.
constexpr unsigned MaxDepth = 64;

struct Parser {
  const std::string &Text;
  std::size_t Pos = 0;
  std::string &Err;
  unsigned Depth = 0;

  bool fail(const std::string &What) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " at byte %zu", Pos);
    Err = What + Buf;
    return false;
  }

  void skipWS() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C, const char *What) {
    skipWS();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool literal(const char *Word, std::size_t Len) {
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("bad literal (expected ") + Word + ")");
    Pos += Len;
    return true;
  }

  /// Reads exactly four hex digits into \p Code. On a short or malformed
  /// run, Pos points at the offending byte so the error offset is exact.
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size()) {
      Pos = Text.size();
      return fail("truncated \\u escape");
    }
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<unsigned>(H - 'A' + 10);
      else
        return fail("bad \\u escape digit");
      ++Pos;
    }
    return true;
  }

  /// Appends \p Code as UTF-8 (Code is a scalar value; surrogates were
  /// already combined or rejected by the caller).
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "string"))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Code;
          if (!parseHex4(Code))
            return false;
          // RFC 8259 represents code points beyond the BMP as a surrogate
          // pair of \u escapes. A high surrogate must be followed by a
          // \u-escaped low surrogate; unpaired surrogates are malformed.
          if (Code >= 0xD800 && Code <= 0xDBFF) {
            if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
                Text[Pos + 1] != 'u')
              return fail("unpaired high surrogate");
            Pos += 2;
            unsigned Low;
            if (!parseHex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("invalid low surrogate");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      Out += C;
    }
  }

  bool parseValue(Value &Out) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    skipWS();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    bool Ok = parseValueInner(Out);
    --Depth;
    return Ok;
  }

  bool parseValueInner(Value &Out) {
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = Value::Kind::Object;
      skipWS();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        std::string Key;
        skipWS();
        if (!parseString(Key))
          return false;
        if (!consume(':', "':'"))
          return false;
        Value V;
        if (!parseValue(V))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(V));
        skipWS();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = Value::Kind::Array;
      skipWS();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Value V;
        if (!parseValue(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWS();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return literal("true", 4);
    }
    if (C == 'f') {
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return literal("false", 5);
    }
    if (C == 'n') {
      Out.K = Value::Kind::Null;
      return literal("null", 4);
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      std::size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      // JSON forbids leading zeros ("01"); strtod below would accept them.
      if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
          std::isdigit(static_cast<unsigned char>(Text[Pos + 1]))) {
        Pos = Start;
        return fail("malformed number");
      }
      while (Pos < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
              Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      Out.K = Value::Kind::Number;
      char *End = nullptr;
      std::string Num = Text.substr(Start, Pos - Start);
      Out.Num = std::strtod(Num.c_str(), &End);
      if (End == Num.c_str() || *End != '\0') {
        Pos = Start;
        return fail("malformed number");
      }
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace

bool omega::api::json::parse(const std::string &Text, Value &Out,
                             std::string &Err) {
  Parser P{Text, 0, Err};
  if (!P.parseValue(Out))
    return false;
  P.skipWS();
  if (P.Pos != Text.size())
    return P.fail("trailing characters after document");
  return true;
}

std::string omega::api::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
