//===- api/Json.h - Minimal JSON parsing for the request protocol --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader for the pieces of the serving
/// stack that consume JSON: omega-serve's JSONL request lines and the
/// option objects embedded in them. It parses RFC 8259 documents with
/// full \uXXXX decoding (surrogate pairs combine to UTF-8; unpaired
/// surrogates are rejected), a bounded nesting depth so hostile input
/// fails cleanly instead of exhausting the stack, and byte-exact error
/// offsets for truncated input. Writing JSON stays string-building
/// (api/Response.h) so the response bytes are reproducible -- the
/// bit-identity gate diffs them directly.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_API_JSON_H
#define OMEGA_API_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace omega {
namespace api {
namespace json {

class Value;

/// Parsed JSON value. Objects keep insertion order (the protocol never
/// relies on it, but error messages stay readable).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &asArray() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &asObject() const {
    return Obj;
  }

  /// Object member lookup; null when absent or not an object.
  const Value *get(const std::string &Key) const;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text as one JSON document. On failure returns false and sets
/// \p Err to a one-line description with a byte offset.
bool parse(const std::string &Text, Value &Out, std::string &Err);

/// Escapes \p S for embedding in a JSON string literal (no quotes added).
std::string escape(const std::string &S);

} // namespace json
} // namespace api
} // namespace omega

#endif // OMEGA_API_JSON_H
