//===- api/Response.cpp ---------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "api/Response.h"

#include "api/Json.h"
#include "transform/Pipeline.h"

#include <cstdio>

using namespace omega;
using namespace omega::api;

namespace {

std::string jsonAccess(const ir::Access &A) {
  return "{\"stmt\": " + std::to_string(A.StmtLabel) + ", \"text\": \"" +
         json::escape(A.Text) + "\"}";
}

void appendDeps(std::string &Out, const std::vector<deps::Dependence> &Deps) {
  Out += "[";
  bool FirstDep = true;
  for (const deps::Dependence &D : Deps) {
    if (!FirstDep)
      Out += ", ";
    FirstDep = false;
    Out += "{\"from\": " + jsonAccess(*D.Src) +
           ", \"to\": " + jsonAccess(*D.Dst) +
           ", \"covers\": " + (D.Covers ? "true" : "false") + ", \"splits\": [";
    bool FirstSplit = true;
    for (const deps::DepSplit &S : D.Splits) {
      if (!FirstSplit)
        Out += ", ";
      FirstSplit = false;
      Out += "{\"level\": " + std::to_string(S.Level) + ", \"dir\": \"" +
             json::escape(S.dirToString()) +
             "\", \"dead\": " + (S.Dead ? "true" : "false");
      if (S.DeadReason)
        Out += std::string(", \"reason\": \"") + S.DeadReason + "\"";
      if (S.Refined)
        Out += ", \"refined\": true";
      Out += "}";
    }
    Out += "]}";
  }
  Out += "]";
}

const char *enablingReasonName(char R) {
  switch (R) {
  case 'p':
    return "privatization";
  case 'c':
    return "covered";
  default:
    return "killed";
  }
}

/// The schema-4 "pipeline" array: one deterministic entry per loop.
void appendPipeline(std::string &Out, const ir::AnalyzedProgram &AP,
                    const analysis::AnalysisResult &R) {
  Out += "[";
  bool FirstLoop = true;
  for (const transform::PipelineFacts &F : transform::analyzePipelines(AP, R)) {
    if (!FirstLoop)
      Out += ", ";
    FirstLoop = false;
    Out += "{\"loop\": \"" + json::escape(F.Loop->SourceVar) +
           "\", \"depth\": " + std::to_string(F.Loop->Depth + 1) +
           ", \"statements\": " + std::to_string(F.Statements) +
           ", \"sccs\": " + std::to_string(F.Sccs) +
           ", \"planned\": " + (F.Plan.valid() ? "true" : "false");
    if (F.Plan.valid()) {
      Out += ", \"stages\": [";
      bool FirstStage = true;
      for (const transform::PipelineStage &S : F.Plan.Stages) {
        if (!FirstStage)
          Out += ", ";
        FirstStage = false;
        Out += "{\"stmts\": [";
        for (unsigned I = 0; I != S.StmtLabels.size(); ++I)
          Out += (I ? ", " : "") + std::to_string(S.StmtLabels[I]);
        Out += "], \"parallel\": ";
        Out += S.Parallel ? "true" : "false";
        Out += ", \"weight\": " + std::to_string(S.Weight) + "}";
      }
      Out += "], \"privatized\": [";
      for (unsigned I = 0; I != F.Plan.PrivatizedArrays.size(); ++I)
        Out += (I ? ", \"" : "\"") +
               json::escape(F.Plan.PrivatizedArrays[I]) + "\"";
      Out += "], \"enabledBy\": [";
      bool FirstKill = true;
      for (const transform::EnablingKill &K : F.Plan.EnablingKills) {
        if (!FirstKill)
          Out += ", ";
        FirstKill = false;
        Out += "{\"from\": " + std::to_string(K.SrcLabel) +
               ", \"to\": " + std::to_string(K.DstLabel) + ", \"kind\": \"" +
               depKindName(K.Kind) + "\", \"reason\": \"" +
               enablingReasonName(K.Reason) + "\"}";
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f", F.Plan.EstimatedSpeedup);
      Out += std::string("], \"estSpeedup\": ") + Buf;
    }
    Out += "}";
  }
  Out += "]";
}

} // namespace

std::string api::renderResult(const analysis::AnalysisResult &R,
                              const ir::AnalyzedProgram *PipelineAP) {
  std::string Out = "{\"flow\": ";
  appendDeps(Out, R.Flow);
  Out += ", \"anti\": ";
  appendDeps(Out, R.Anti);
  Out += ", \"output\": ";
  appendDeps(Out, R.Output);

  Out += ", \"pairs\": [";
  bool First = true;
  for (const analysis::PairRecord &P : R.Pairs) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"write\": " + jsonAccess(*P.Write) +
           ", \"read\": " + jsonAccess(*P.Read) +
           ", \"hasFlow\": " + (P.HasFlow ? "true" : "false") +
           ", \"usedGeneralTest\": " + (P.UsedGeneralTest ? "true" : "false") +
           ", \"splitVectors\": " + (P.SplitVectors ? "true" : "false") + "}";
  }
  Out += "], \"kills\": [";
  First = true;
  for (const analysis::KillRecord &K : R.Kills) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"from\": " + jsonAccess(*K.From) +
           ", \"killer\": " + jsonAccess(*K.Killer) +
           ", \"to\": " + jsonAccess(*K.To) +
           ", \"usedOmega\": " + (K.UsedOmega ? "true" : "false") +
           ", \"killed\": " + (K.Killed ? "true" : "false") + "}";
  }
  Out += "]";
  if (PipelineAP) {
    Out += ", \"pipeline\": ";
    appendPipeline(Out, *PipelineAP, R);
  }
  Out += "}";
  return Out;
}

std::string api::renderMetrics(const engine::AnalysisResult &R, unsigned Jobs,
                               double WallMs, const std::string &ProfileJson,
                               const std::string &ExplainLog) {
  char Buf[64];
  std::string Out = "{\"jobs\": " + std::to_string(Jobs);
  std::snprintf(Buf, sizeof(Buf), ", \"wallMs\": %.3f", WallMs);
  Out += Buf;

  const OmegaStats &S = R.Stats;
  Out += ", \"stats\": {\"satisfiabilityCalls\": " +
         std::to_string(S.SatisfiabilityCalls) +
         ", \"projectionCalls\": " + std::to_string(S.ProjectionCalls) +
         ", \"gistCalls\": " + std::to_string(S.GistCalls) +
         ", \"exactEliminations\": " + std::to_string(S.ExactEliminations) +
         ", \"inexactEliminations\": " + std::to_string(S.InexactEliminations) +
         ", \"splintersExplored\": " + std::to_string(S.SplintersExplored) +
         ", \"darkShadowDecided\": " + std::to_string(S.DarkShadowDecided) +
         ", \"realShadowDecided\": " + std::to_string(S.RealShadowDecided) +
         ", \"modHatSubstitutions\": " + std::to_string(S.ModHatSubstitutions) +
         ", \"gistFastDrops\": " + std::to_string(S.GistFastDrops) +
         ", \"gistFastKeeps\": " + std::to_string(S.GistFastKeeps) +
         ", \"gistSatTests\": " + std::to_string(S.GistSatTests) +
         ", \"satCacheHits\": " + std::to_string(S.SatCacheHits) +
         ", \"satCacheMisses\": " + std::to_string(S.SatCacheMisses) +
         ", \"gistCacheHits\": " + std::to_string(S.GistCacheHits) +
         ", \"gistCacheMisses\": " + std::to_string(S.GistCacheMisses) +
         ", \"snapshotBuilds\": " + std::to_string(S.SnapshotBuilds) +
         ", \"snapshotReuses\": " + std::to_string(S.SnapshotReuses) +
         ", \"snapshotFallbacks\": " + std::to_string(S.SnapshotFallbacks) +
         ", \"snapshotCacheHits\": " + std::to_string(S.SnapshotCacheHits) +
         ", \"snapshotCacheMisses\": " +
         std::to_string(S.SnapshotCacheMisses) +
         ", \"quicktestZiv\": " + std::to_string(S.QuickTestZIV) +
         ", \"quicktestGcd\": " + std::to_string(S.QuickTestGCD) +
         ", \"quicktestBounds\": " + std::to_string(S.QuickTestBounds) +
         ", \"quicktestTrivialDep\": " + std::to_string(S.QuickTestTrivialDep) +
         ", \"quicktestDecided\": " + std::to_string(S.QuickTestDecided) +
         ", \"snapshotEvictions\": " + std::to_string(S.SnapshotEvictions) +
         ", \"deltaPairsReused\": " + std::to_string(S.DeltaPairsReused) +
         ", \"deltaPairsResolved\": " + std::to_string(S.DeltaPairsResolved) +
         ", \"deltaPairsNew\": " + std::to_string(S.DeltaPairsNew) +
         ", \"resultStoreHits\": " + std::to_string(S.ResultStoreHits) +
         ", \"resultStoreMisses\": " + std::to_string(S.ResultStoreMisses) +
         ", \"resultStoreEvictions\": " +
         std::to_string(S.ResultStoreEvictions) + "}";

  Out += ", \"cache\": {\"satHits\": " + std::to_string(R.Cache.SatHits) +
         ", \"satMisses\": " + std::to_string(R.Cache.SatMisses) +
         ", \"gistHits\": " + std::to_string(R.Cache.GistHits) +
         ", \"gistMisses\": " + std::to_string(R.Cache.GistMisses) +
         ", \"entries\": " + std::to_string(R.CacheEntries) + "}";
  if (R.Delta.Active)
    Out += ", \"delta\": {\"pairsReused\": " +
           std::to_string(R.Delta.PairsReused) +
           ", \"pairsResolved\": " + std::to_string(R.Delta.PairsResolved) +
           ", \"pairsNew\": " + std::to_string(R.Delta.PairsNew) +
           ", \"pairsRemoved\": " + std::to_string(R.Delta.PairsRemoved) +
           ", \"killGroupsReused\": " +
           std::to_string(R.Delta.KillGroupsReused) +
           ", \"killGroupsTotal\": " + std::to_string(R.Delta.KillGroupsTotal) +
           "}";
  if (!ProfileJson.empty()) {
    std::string Profile = ProfileJson;
    // The tracer's JSON report is pretty-printed; the response document is
    // one line, so flatten it.
    std::string Flat;
    Flat.reserve(Profile.size());
    for (char C : Profile)
      if (C != '\n')
        Flat += C;
    Out += ", \"profile\": " + Flat;
  }
  if (!ExplainLog.empty())
    Out += ", \"explain\": \"" + json::escape(ExplainLog) + "\"";
  Out += "}";
  return Out;
}

std::string api::renderDocument(const std::string &Result,
                                const std::string &Metrics) {
  return "{\"schema\": " + std::to_string(SchemaVersion) +
         ", \"ok\": true, \"result\": " + Result +
         ", \"metrics\": " + Metrics + "}\n";
}

std::string api::renderServerOk(uint64_t Id, const std::string &Result,
                                const std::string &Metrics) {
  return "{\"schema\": " + std::to_string(SchemaVersion) +
         ", \"id\": " + std::to_string(Id) +
         ", \"ok\": true, \"result\": " + Result +
         ", \"metrics\": " + Metrics + "}";
}

std::string api::renderServerOp(bool HasId, uint64_t Id, const std::string &Op,
                                const std::string &BodyKey,
                                const std::string &Body) {
  return "{\"schema\": " + std::to_string(SchemaVersion) +
         ", \"id\": " + (HasId ? std::to_string(Id) : "null") +
         ", \"ok\": true, \"op\": \"" + Op + "\", \"" + BodyKey +
         "\": " + Body + "}";
}

std::string api::renderServerError(bool HasId, uint64_t Id,
                                   const std::string &Code,
                                   const std::string &Message) {
  return "{\"schema\": " + std::to_string(SchemaVersion) +
         ", \"id\": " + (HasId ? std::to_string(Id) : "null") +
         ", \"ok\": false, \"error\": {\"code\": \"" + json::escape(Code) +
         "\", \"message\": \"" + json::escape(Message) + "\"}}";
}
