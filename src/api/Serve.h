//===- api/Serve.h - The warm-cache analysis server -----------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// omega-serve's core: a long-running analysis service that admits many
/// programs concurrently and keeps the Omega memoization state warm across
/// requests. The protocol is JSONL -- one request object per line, one
/// response object per line -- over stdin/stdout or a Unix domain socket:
///
///   {"id": 1, "source": "for i = 1 to n { a[i] = a[i-1]; }",
///    "options": {"quicktests": false}, "deadlineMs": 500}
///
/// Responses are schema-4 documents (api/Response.h) with the request id
/// spliced in; `{"id": 2, "op": "shutdown"}` stops the server. Because
/// the engine's structural result is deterministic for every Jobs value
/// and cache state, a server response's "result" section is byte-identical
/// to a one-shot `omega-analyze --json` run of the same program -- warm
/// or cold, interleaved with any other clients.
///
/// Architecture: N worker threads, each owning a private DependenceEngine
/// (an engine run is not reentrant), all engines pointing at ONE shared
/// QueryCache. The cache is the warmth substrate -- sat verdicts, gists,
/// and elimination snapshots computed for any request are reused by every
/// later one -- and the unit of persistence (Config::CacheFile warm-starts
/// it across server lifetimes). Admission control is a bounded queue:
/// submissions beyond MaxQueue are shed immediately with an "overloaded"
/// error, and a request whose deadline passed while queued is answered
/// "deadline_exceeded" instead of being run.
///
/// Edit-incremental sessions: a request may carry a "session" string.
/// The server retains the last analysis baseline (engine/DeltaPlanner.h)
/// per session, LRU-bounded at Config::MaxSessions, and hands it to the
/// engine on the session's next request, so re-analyzing an edited
/// program only solves the pairs the edit touched. Reuse is
/// result-invisible -- the response's "result" section stays
/// byte-identical to an uncached run -- and "metrics.delta" reports the
/// pair classification.
///
/// Above the session tier sit two cross-request reuse tiers. A global
/// engine::ResultStore (fingerprint-keyed solved outcomes, shared by all
/// workers, persisted via Config::ResultCacheFile) lets ANY request --
/// stateless, fresh session, or restarted server -- materialize pairs a
/// structurally identical program solved before. And in-flight request
/// coalescing (singleflight) merges concurrent sessionless requests with
/// identical source and options: one leader solves, the followers' worker
/// slots are freed immediately, and the leader answers every follower
/// with the shared result document under each follower's own id. Both
/// tiers are result-invisible by the same byte-identity gate.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_API_SERVE_H
#define OMEGA_API_SERVE_H

#include "api/Options.h"
#include "engine/ResultStore.h"
#include "obs/Metrics.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace omega {

class QueryCache;

namespace api {

class Server {
public:
  struct Config {
    /// Per-request option defaults (a request's "options" object overlays
    /// these). Jobs is each worker engine's thread count.
    AnalysisOptions Defaults;
    /// Concurrent worker engines (= requests in flight).
    unsigned Workers = 4;
    /// Admission bound: queued-but-unstarted requests beyond this are shed
    /// with an "overloaded" error.
    std::size_t MaxQueue = 64;
    /// Default per-request deadline in milliseconds, measured from
    /// admission; 0 means none. A request's "deadlineMs" overrides it.
    std::uint64_t DeadlineMs = 0;
    /// Warm-start file: loaded (if present and valid) at construction,
    /// saved at stop(). Empty disables persistence.
    std::string CacheFile;
    /// Incremental-session retention bound: baselines for the most
    /// recently used MaxSessions session ids stay resident; older ones
    /// are dropped (their next request runs from scratch, never wrong).
    std::size_t MaxSessions = 64;
    /// Result-store persistence file: loaded (if present and valid) at
    /// construction -- corruption warns and cold-starts -- and saved
    /// atomically at stop(). Empty disables persistence (the in-memory
    /// store still runs).
    std::string ResultCacheFile;
    /// Result-store entry bound (0 = unbounded), LRU-evicted beyond it.
    std::size_t ResultStoreCap = engine::ResultStore::DefaultCapacity;
    /// In-flight coalescing: concurrent sessionless analyze requests with
    /// identical source and options share one engine solve.
    bool Coalesce = true;

    // -- telemetry sinks (the registry itself is always on; recording is
    // -- a few relaxed atomics per request and never touches results) ----
    /// Prometheus text-format exposition file, rewritten atomically
    /// (tmp + rename) on every metrics op, every 64th completed request,
    /// and at stop(). Empty disables the file.
    std::string MetricsFile;
    /// JSONL access log: one record per analyzed request (latency
    /// decomposition, cache traffic, response code). Empty disables it.
    std::string AccessLog;
    /// Slow-request threshold in milliseconds: requests at or above it
    /// are traced (a per-request obs::Tracer attached to the worker's
    /// engine) and flagged "slow" in the access log. 0 disables capture.
    std::uint64_t SlowMs = 0;
    /// Where slow-request Chrome traces land (slow-<seq>-<id>.trace.json);
    /// empty keeps the flag-only behavior.
    std::string SlowTraceDir;
    /// Rotate the access log when it exceeds this many megabytes: the
    /// current file is flushed and renamed to AccessLog + ".1" (replacing
    /// any previous rotation) and a fresh file is opened. Records are
    /// written whole under one lock, so rotation never tears a line.
    /// 0 disables rotation.
    std::uint64_t AccessLogMaxMB = 0;
    /// Latency-histogram bucket upper bounds in microseconds, strictly
    /// increasing (--latency-buckets-us). Empty uses the built-in
    /// boundaries (100us..1s, tight sub-millisecond resolution).
    std::vector<std::uint64_t> LatencyBoundsUs;
  };

  explicit Server(const Config &C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Submits one request line. \p Respond is invoked exactly once with the
  /// response line (no trailing newline) -- synchronously for admission
  /// failures and malformed requests, from a worker thread otherwise. The
  /// callback must be thread-safe against other responses.
  void submit(std::string Line, std::function<void(std::string)> Respond);

  /// Stops admission, drains queued requests, joins the workers, and (once)
  /// saves the cache file. Idempotent; the destructor calls it.
  void stop();

  /// Asks the IO loops (runStdin/runSocket) to wind down; the "shutdown"
  /// op calls this. Does not drain -- stop() does.
  void requestStop();
  bool stopRequested() const { return StopFlag.load(); }

  /// What happened to Config::CacheFile at construction ("warm start:
  /// ...", "cold start: ..."), empty when persistence is off.
  const std::string &startupNote() const { return StartupNote; }

  /// The shared cache, or null when Defaults.UseQueryCache is false.
  QueryCache *cache() { return Cache.get(); }

  /// The global cross-request result store (always present; every worker
  /// engine consults and feeds it). Public for in-process tests/bench.
  engine::ResultStore &resultStore() { return Store; }

  /// A deterministic snapshot of the server's metrics registry with the
  /// sampled gauges (cache occupancy, live sessions) refreshed first.
  /// What the metrics op, the health op, the exposition file, and the
  /// shutdown acknowledgment all render; public for in-process tests.
  obs::MetricsSnapshot metricsSnapshot() const;

  /// Serves JSONL request lines from \p In until EOF or a shutdown op,
  /// writing one response line each to \p Out (interleaved across workers;
  /// match by id). Calls stop() before returning. Returns an exit code.
  int runStdin(std::istream &In, std::ostream &Out);

  /// Binds a Unix domain socket at \p Path and serves each connection as
  /// an independent JSONL stream until a shutdown op arrives. Progress
  /// and errors go to \p Log. Calls stop() before returning.
  int runSocket(const std::string &Path, std::ostream &Log);

private:
  struct Request {
    bool HasId = false;
    std::uint64_t Id = 0;
    std::string Source;
    std::string Session; ///< incremental-session id, empty = stateless
    AnalysisOptions Opts;
    std::chrono::steady_clock::time_point Deadline;
    bool HasDeadline = false;
    /// When submit() accepted the request; queue wait and total latency
    /// are measured from here.
    std::chrono::steady_clock::time_point Admitted;
    std::function<void(std::string)> Respond;
  };
  struct Conn;
  struct Telemetry;

  /// A coalesced follower parked on an in-flight leader: the original
  /// request plus its already-measured queue wait (observed when its
  /// worker dequeued it, before the worker slot was freed).
  struct Waiter {
    Request R;
    std::uint64_t QueueWaitUs = 0;
  };
  /// One in-flight sessionless solve, keyed by source + engine-relevant
  /// options. Present in the map exactly while a leader is running.
  struct InflightEntry {
    std::vector<Waiter> Waiters;
  };

  void workerLoop(unsigned Index);
  void runOne(Request &R, unsigned Index);

  /// Appends one access-log line (under the log lock) and rotates the
  /// file when Config::AccessLogMaxMB is exceeded. No-op when the log is
  /// not open.
  void logAccessLine(const std::string &Line);

  /// Renders and atomically rewrites Config::MetricsFile (no-op when the
  /// path is empty). Serialized internally; safe from any thread.
  void writeMetricsFile();
  /// The metrics-op response body (uptime + snapshot + shared-cache
  /// attribution for the accounting cross-check).
  std::string metricsBody() const;
  /// The health-op response body.
  std::string healthBody() const;

  /// The retained baseline for \p Session (null if none), bumped to
  /// most-recently-used. Thread-safe.
  std::shared_ptr<const engine::BaselineResult>
  sessionBaseline(const std::string &Session);
  /// Retains \p Baseline as \p Session's latest, evicting the least
  /// recently used session beyond Config::MaxSessions. Thread-safe.
  void retainSession(const std::string &Session,
                     std::shared_ptr<const engine::BaselineResult> Baseline);

  Config Cfg;
  std::unique_ptr<QueryCache> Cache;
  std::string StartupNote;
  std::unique_ptr<Telemetry> Tele;

  mutable std::mutex QueueMu; ///< const healthBody() samples queue depth
  std::condition_variable QueueCV;
  std::deque<Request> Queue;
  bool Draining = false; ///< stop() begun: no admissions, workers drain

  struct SessionEntry {
    std::shared_ptr<const engine::BaselineResult> Baseline;
    std::list<std::string>::iterator Recency; ///< position in SessionLRU
  };
  std::mutex SessionsMu;
  std::unordered_map<std::string, SessionEntry> Sessions;
  std::list<std::string> SessionLRU; ///< most recently used at the front

  /// The global result store, shared by every worker engine.
  engine::ResultStore Store;

  std::mutex CoalesceMu;
  std::unordered_map<std::string, InflightEntry> Inflight;

  std::vector<std::unique_ptr<engine::DependenceEngine>> Engines;
  std::vector<std::thread> Workers;
  std::atomic<bool> StopFlag{false};
  std::atomic<int> ListenFd{-1};
  std::mutex ConnsMu;
  std::vector<std::weak_ptr<Conn>> Conns;
  bool Stopped = false;
};

} // namespace api
} // namespace omega

#endif // OMEGA_API_SERVE_H
