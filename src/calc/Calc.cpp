//===- calc/Calc.cpp ------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "calc/Calc.h"

#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <cctype>
#include <functional>
#include <optional>

using namespace omega;
using namespace omega::calc;

namespace {

//===----------------------------------------------------------------------===//
// Tokens
//===----------------------------------------------------------------------===//

enum class Tok : uint8_t {
  Eof,
  Error,
  Ident,
  Int,
  Assign,  // :=
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Colon,
  Semi,
  Comma,
  Plus,
  Minus,
  Star,
  AndAnd,
  LE, // <=
  LT, // <
  GE, // >=
  GT, // >
  EQ, // =
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;
  int64_t Value = 0;
  unsigned Line = 1;
};

class Scanner {
public:
  explicit Scanner(std::string_view Src) : Src(Src) {}

  Token next() {
    skip();
    Token T;
    T.Line = Line;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos++];
    switch (C) {
    case '{':
      T.Kind = Tok::LBrace;
      return T;
    case '}':
      T.Kind = Tok::RBrace;
      return T;
    case '[':
      T.Kind = Tok::LBracket;
      return T;
    case ']':
      T.Kind = Tok::RBracket;
      return T;
    case '(':
      T.Kind = Tok::LParen;
      return T;
    case ')':
      T.Kind = Tok::RParen;
      return T;
    case ';':
      T.Kind = Tok::Semi;
      return T;
    case ',':
      T.Kind = Tok::Comma;
      return T;
    case '+':
      T.Kind = Tok::Plus;
      return T;
    case '-':
      T.Kind = Tok::Minus;
      return T;
    case '*':
      T.Kind = Tok::Star;
      return T;
    case '&':
      if (peek() == '&') {
        ++Pos;
        T.Kind = Tok::AndAnd;
        return T;
      }
      break;
    case ':':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::Assign;
        return T;
      }
      T.Kind = Tok::Colon;
      return T;
    case '<':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::LE;
        return T;
      }
      T.Kind = Tok::LT;
      return T;
    case '>':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::GE;
        return T;
      }
      T.Kind = Tok::GT;
      return T;
    case '=':
      T.Kind = Tok::EQ;
      return T;
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = C - '0';
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        V = V * 10 + (Src[Pos++] - '0');
      T.Kind = Tok::Int;
      T.Value = V;
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name(1, C);
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        Name += Src[Pos++];
      T.Kind = Tok::Ident;
      T.Text = std::move(Name);
      return T;
    }
    T.Kind = Tok::Error;
    T.Text = std::string(1, C);
    return T;
  }

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// Parser / evaluator
//===----------------------------------------------------------------------===//

/// An affine form during parsing: coefficients over variable names plus a
/// constant (names resolve to tuple vars, exists-bound vars, or symbolic
/// constants when the constraint is materialized).
struct LinForm {
  std::map<std::string, int64_t> Coeffs;
  int64_t Const = 0;

  LinForm &operator+=(const LinForm &O) {
    for (const auto &[N, C] : O.Coeffs) {
      Coeffs[N] += C;
      if (Coeffs[N] == 0)
        Coeffs.erase(N);
    }
    Const += O.Const;
    return *this;
  }
  LinForm scaled(int64_t K) const {
    LinForm R;
    if (K == 0)
      return R;
    for (const auto &[N, C] : Coeffs)
      R.Coeffs[N] = C * K;
    R.Const = Const * K;
    return R;
  }
};

class Interpreter {
public:
  Interpreter(std::map<std::string, NamedSet> &Sets, std::string_view Src,
              Calculator &Calc)
      : Sets(Sets), Scan(Src), Calc(Calc) {
    bump();
  }

  std::string run() {
    while (Cur.Kind != Tok::Eof && !Fatal)
      statement();
    return Out;
  }

  bool hadError() const { return Errored; }

private:
  void bump() { Cur = Scan.next(); }

  bool expect(Tok K, const char *What) {
    if (Cur.Kind == K) {
      bump();
      return true;
    }
    error(std::string("expected ") + What);
    return false;
  }

  void error(const std::string &Message) {
    Out += "error (line " + std::to_string(Cur.Line) + "): " + Message +
           "\n";
    Errored = true;
    // Recover to the next ';'.
    while (Cur.Kind != Tok::Eof && Cur.Kind != Tok::Semi)
      bump();
    if (Cur.Kind == Tok::Semi)
      bump();
  }

  const NamedSet *getSet(const std::string &Name) {
    auto It = Sets.find(Name);
    if (It == Sets.end()) {
      error("unknown set '" + Name + "'");
      return nullptr;
    }
    return &It->second;
  }

  //--- statements --------------------------------------------------------//

  void statement() {
    if (Cur.Kind != Tok::Ident) {
      error("expected a statement");
      return;
    }
    std::string Head = Cur.Text;
    bump();

    if (Cur.Kind == Tok::Assign) {
      bump();
      assignment(Head);
      return;
    }
    if (Head == "sat")
      return satCmd();
    if (Head == "solution")
      return solutionCmd();
    if (Head == "range")
      return rangeCmd();
    if (Head == "project" || Head == "approx")
      return projectCmd(Head == "approx");
    if (Head == "gist")
      return gistCmd();
    if (Head == "simplify")
      return simplifyCmd();
    if (Head == "print")
      return printCmd();
    if (Head == "trace")
      return traceCmd();
    if (Head == "quicktests" || Head == "incremental")
      return toggleCmd(Head);
    error("unknown command '" + Head + "'");
  }

  /// `trace on;` starts span recording on the calculator's context;
  /// `trace off;` stops it and prints the profile of the traced window.
  void traceCmd() {
    if (Cur.Kind != Tok::Ident ||
        (Cur.Text != "on" && Cur.Text != "off")) {
      error("expected 'on' or 'off' after 'trace'");
      return;
    }
    bool On = Cur.Text == "on";
    bump();
    if (!expect(Tok::Semi, "';'"))
      return;
    if (On) {
      Calc.startTrace();
      Out += "tracing on\n";
    } else {
      Out += Calc.stopTrace();
    }
  }

  /// `quicktests on|off;` / `incremental on|off;`: the calc mirrors of
  /// omega-analyze's --no-quicktests / --no-incremental ablation flags,
  /// flipping the pair-solver tier toggles on the calculator's context.
  void toggleCmd(const std::string &Which) {
    if (Cur.Kind != Tok::Ident || (Cur.Text != "on" && Cur.Text != "off")) {
      error("expected 'on' or 'off' after '" + Which + "'");
      return;
    }
    bool On = Cur.Text == "on";
    bump();
    if (!expect(Tok::Semi, "';'"))
      return;
    if (Which == "quicktests")
      Calc.context().PairQuickTests = On;
    else
      Calc.context().IncrementalSnapshots = On;
    Out += Which + (On ? " on\n" : " off\n");
  }

  void assignment(const std::string &Name) {
    std::optional<NamedSet> S;
    if (Cur.Kind == Tok::LBrace) {
      S = parseSetLiteral();
    } else if (Cur.Kind == Tok::Ident) {
      std::string A = Cur.Text;
      bump();
      if (Cur.Kind == Tok::AndAnd) {
        bump();
        if (Cur.Kind != Tok::Ident) {
          error("expected a set name after '&&'");
          return;
        }
        std::string B = Cur.Text;
        bump();
        S = intersect(A, B);
      } else {
        const NamedSet *Src = getSet(A);
        if (Src)
          S = *Src;
      }
    } else {
      error("expected a set literal or set expression");
      return;
    }
    if (!S)
      return;
    if (!expect(Tok::Semi, "';'"))
      return;
    Sets[Name] = std::move(*S);
  }

  std::string takeSetName() {
    if (Cur.Kind != Tok::Ident) {
      error("expected a set name");
      return "";
    }
    std::string Name = Cur.Text;
    bump();
    return Name;
  }

  void satCmd() {
    std::string Name = takeSetName();
    const NamedSet *S = Name.empty() ? nullptr : getSet(Name);
    if (!S || !expect(Tok::Semi, "';'"))
      return;
    Out += Name + " is " +
           (isSatisfiable(S->P) ? "satisfiable" : "unsatisfiable") + "\n";
  }

  void solutionCmd() {
    std::string Name = takeSetName();
    const NamedSet *S = Name.empty() ? nullptr : getSet(Name);
    if (!S || !expect(Tok::Semi, "';'"))
      return;
    std::optional<std::vector<int64_t>> Sol = findSolution(S->P);
    if (!Sol) {
      Out += Name + " has no solution\n";
      return;
    }
    Out += Name + " solution:";
    for (VarId V = 0; V != static_cast<VarId>(S->P.getNumVars()); ++V) {
      if (S->P.isDead(V) || !S->P.isProtected(V))
        continue;
      Out += " " + S->P.getVarName(V) + "=" + std::to_string((*Sol)[V]);
    }
    Out += "\n";
  }

  void rangeCmd() {
    std::string Name = takeSetName();
    const NamedSet *S = Name.empty() ? nullptr : getSet(Name);
    if (!S)
      return;
    if (!expect(Tok::LBracket, "'['"))
      return;
    if (Cur.Kind != Tok::Ident) {
      error("expected a variable name");
      return;
    }
    std::string VarName = Cur.Text;
    bump();
    if (!expect(Tok::RBracket, "']'") || !expect(Tok::Semi, "';'"))
      return;
    VarId V = -1;
    for (VarId I = 0; I != static_cast<VarId>(S->P.getNumVars()); ++I)
      if (S->P.getVarName(I) == VarName)
        V = I;
    if (V < 0) {
      error("'" + VarName + "' is not a variable of " + Name);
      return;
    }
    Out += VarName + " in " + computeVarRange(S->P, V).toString() + "\n";
  }

  void projectCmd(bool Approx) {
    std::string Name = takeSetName();
    const NamedSet *S = Name.empty() ? nullptr : getSet(Name);
    if (!S)
      return;
    if (Cur.Kind != Tok::Ident || Cur.Text != "onto") {
      error("expected 'onto'");
      return;
    }
    bump();
    if (!expect(Tok::LBracket, "'['"))
      return;
    std::vector<std::string> Keep;
    while (Cur.Kind == Tok::Ident) {
      Keep.push_back(Cur.Text);
      bump();
      if (Cur.Kind == Tok::Comma)
        bump();
    }
    if (!expect(Tok::RBracket, "']'") || !expect(Tok::Semi, "';'"))
      return;

    std::vector<bool> Mask(S->P.getNumVars(), false);
    for (const std::string &K : Keep) {
      bool Found = false;
      for (VarId V = 0; V != static_cast<VarId>(S->P.getNumVars()); ++V)
        if (S->P.getVarName(V) == K) {
          Mask[V] = true;
          Found = true;
        }
      if (!Found) {
        Out += "warning: '" + K + "' is not a variable of " + Name + "\n";
      }
    }
    // Keep symbolic constants too (project away only the unnamed tuple
    // vars): symbolic constants are all vars not in the tuple.
    for (VarId V = 0; V != static_cast<VarId>(S->P.getNumVars()); ++V) {
      const std::string &N = S->P.getVarName(V);
      bool IsTuple = false;
      for (const std::string &T : S->Tuple)
        IsTuple |= T == N;
      if (!IsTuple && S->P.isProtected(V))
        Mask[V] = true;
    }

    ProjectionResult R = projectOntoMask(S->P, Mask);
    if (Approx) {
      Out += "approx: " + R.Approx.toString() +
             (R.ApproxIsExact ? " (exact)" : " (over-approximate)") + "\n";
      return;
    }
    if (R.Pieces.empty()) {
      Out += "projection is empty\n";
      return;
    }
    if (R.Pieces.size() == 1) {
      Out += "projection: " + R.Pieces.front().toString() + "\n";
      return;
    }
    Out += "projection (union of " + std::to_string(R.Pieces.size()) +
           " pieces):\n";
    for (const Problem &Piece : R.Pieces)
      Out += "  " + Piece.toString() + "\n";
  }

  void gistCmd() {
    std::string PName = takeSetName();
    const NamedSet *PS = PName.empty() ? nullptr : getSet(PName);
    if (!PS)
      return;
    if (Cur.Kind != Tok::Ident || Cur.Text != "given") {
      error("expected 'given'");
      return;
    }
    bump();
    std::string QName = takeSetName();
    const NamedSet *QS = QName.empty() ? nullptr : getSet(QName);
    if (!QS || !expect(Tok::Semi, "';'"))
      return;

    // Align the two sets on one layout by variable name.
    Problem A, B;
    if (!align(*PS, *QS, A, B)) {
      error("sets '" + PName + "' and '" + QName +
            "' have incompatible tuples");
      return;
    }
    Out += "gist: " + gist(A, B).toString() + "\n";
  }

  void simplifyCmd() {
    std::string Name = takeSetName();
    auto It = Sets.find(Name);
    if (It == Sets.end()) {
      error("unknown set '" + Name + "'");
      return;
    }
    if (!expect(Tok::Semi, "';'"))
      return;
    if (It->second.P.normalize() == Problem::NormalizeResult::False) {
      It->second.P.clearConstraints();
      It->second.P.addGEQ({}, -1);
    } else {
      removeRedundantConstraints(It->second.P);
    }
    Out += Name + " = " + It->second.P.toString() + "\n";
  }

  void printCmd() {
    std::string Name = takeSetName();
    const NamedSet *S = Name.empty() ? nullptr : getSet(Name);
    if (!S || !expect(Tok::Semi, "';'"))
      return;
    Out += Name + " = {[";
    for (unsigned I = 0; I != S->Tuple.size(); ++I)
      Out += (I ? "," : "") + S->Tuple[I];
    Out += "] : ... } " + S->P.toString() + "\n";
  }

  //--- set construction ---------------------------------------------------//

  /// {[i,j] : constraints}
  std::optional<NamedSet> parseSetLiteral() {
    NamedSet S;
    bump(); // '{'
    if (!expect(Tok::LBracket, "'['"))
      return std::nullopt;
    while (Cur.Kind == Tok::Ident) {
      S.Tuple.push_back(Cur.Text);
      S.P.addVar(Cur.Text);
      bump();
      if (Cur.Kind == Tok::Comma)
        bump();
    }
    if (!expect(Tok::RBracket, "']'"))
      return std::nullopt;
    if (Cur.Kind == Tok::Colon) {
      bump();
      if (!parseConstraints(S))
        return std::nullopt;
    }
    if (!expect(Tok::RBrace, "'}'"))
      return std::nullopt;
    return S;
  }

  VarId varFor(NamedSet &S, const std::string &Name) {
    for (VarId V = 0; V != static_cast<VarId>(S.P.getNumVars()); ++V)
      if (S.P.getVarName(V) == Name)
        return V;
    return S.P.addVar(Name); // a free symbolic constant
  }

  /// conjunction of chains and exists-blocks
  bool parseConstraints(NamedSet &S) {
    while (true) {
      if (Cur.Kind == Tok::Ident && Cur.Text == "exists") {
        bump();
        std::vector<std::string> Bound;
        while (Cur.Kind == Tok::Ident) {
          Bound.push_back(Cur.Text);
          bump();
          if (Cur.Kind == Tok::Comma)
            bump();
          else
            break;
        }
        if (!expect(Tok::Colon, "':'") || !expect(Tok::LParen, "'('"))
          return false;
        // Bound names shadow (and are then existential): pre-create them
        // as wildcards under their own names.
        std::vector<std::pair<std::string, VarId>> Shadowed;
        for (const std::string &N : Bound) {
          VarId V = S.P.addVar(N + "'", /*Protected=*/false);
          Shadowed.push_back({N, V});
        }
        ExistsScope.insert(ExistsScope.end(), Shadowed.begin(),
                           Shadowed.end());
        if (!parseConstraints(S))
          return false;
        ExistsScope.resize(ExistsScope.size() - Shadowed.size());
        if (!expect(Tok::RParen, "')'"))
          return false;
      } else {
        if (!parseChain(S))
          return false;
      }
      if (Cur.Kind == Tok::AndAnd) {
        bump();
        continue;
      }
      return true;
    }
  }

  /// expr relop expr (relop expr)*
  bool parseChain(NamedSet &S) {
    std::optional<LinForm> L = parseExpr(S);
    if (!L)
      return false;
    bool Any = false;
    while (Cur.Kind == Tok::LE || Cur.Kind == Tok::LT ||
           Cur.Kind == Tok::GE || Cur.Kind == Tok::GT ||
           Cur.Kind == Tok::EQ) {
      Tok Rel = Cur.Kind;
      bump();
      std::optional<LinForm> R = parseExpr(S);
      if (!R)
        return false;
      emitRelation(S, *L, Rel, *R);
      L = R;
      Any = true;
    }
    if (!Any) {
      error("expected a relation");
      return false;
    }
    return true;
  }

  void emitRelation(NamedSet &S, const LinForm &L, Tok Rel,
                    const LinForm &R) {
    // Build R - L (for <=-family) or L - R, into a row.
    auto emit = [&](const LinForm &Pos, const LinForm &Neg, int64_t Adjust,
                    ConstraintKind Kind) {
      Constraint &Row = S.P.addRow(Kind);
      for (const auto &[N, C] : Pos.Coeffs)
        Row.addToCoeff(varFor(S, N), C);
      for (const auto &[N, C] : Neg.Coeffs)
        Row.addToCoeff(varFor(S, N), -C);
      Row.addToConstant(Pos.Const - Neg.Const + Adjust);
    };
    switch (Rel) {
    case Tok::LE: // R - L >= 0
      emit(R, L, 0, ConstraintKind::GEQ);
      break;
    case Tok::LT: // R - L - 1 >= 0
      emit(R, L, -1, ConstraintKind::GEQ);
      break;
    case Tok::GE:
      emit(L, R, 0, ConstraintKind::GEQ);
      break;
    case Tok::GT:
      emit(L, R, -1, ConstraintKind::GEQ);
      break;
    case Tok::EQ:
      emit(L, R, 0, ConstraintKind::EQ);
      break;
    default:
      break;
    }
  }

  std::optional<LinForm> parseExpr(NamedSet &S) {
    std::optional<LinForm> L = parseTerm(S);
    if (!L)
      return std::nullopt;
    while (Cur.Kind == Tok::Plus || Cur.Kind == Tok::Minus) {
      bool Add = Cur.Kind == Tok::Plus;
      bump();
      std::optional<LinForm> R = parseTerm(S);
      if (!R)
        return std::nullopt;
      *L += Add ? *R : R->scaled(-1);
    }
    return L;
  }

  std::optional<LinForm> parseTerm(NamedSet &S) {
    if (Cur.Kind == Tok::Minus) {
      bump();
      std::optional<LinForm> T = parseTerm(S);
      if (!T)
        return std::nullopt;
      return T->scaled(-1);
    }
    if (Cur.Kind == Tok::LParen) {
      bump();
      std::optional<LinForm> E = parseExpr(S);
      if (!E || !expect(Tok::RParen, "')'"))
        return std::nullopt;
      return E;
    }
    if (Cur.Kind == Tok::Int) {
      int64_t K = Cur.Value;
      bump();
      if (Cur.Kind == Tok::Star)
        bump();
      if (Cur.Kind == Tok::Ident) {
        LinForm F;
        F.Coeffs[resolveName(Cur.Text)] = K;
        bump();
        return F;
      }
      LinForm F;
      F.Const = K;
      return F;
    }
    if (Cur.Kind == Tok::Ident) {
      LinForm F;
      F.Coeffs[resolveName(Cur.Text)] = 1;
      bump();
      if (Cur.Kind == Tok::Star) {
        error("only constant coefficients are linear");
        return std::nullopt;
      }
      return F;
    }
    error("expected an expression");
    return std::nullopt;
  }

  /// Maps a source name through the innermost exists scope.
  std::string resolveName(const std::string &Name) {
    for (auto It = ExistsScope.rbegin(); It != ExistsScope.rend(); ++It)
      if (It->first == Name)
        return Name + "'"; // the wildcard's actual variable name
    return Name;
  }

  //--- set algebra --------------------------------------------------------//

  /// Rebuilds A and B over one shared layout (matching variables by
  /// name); returns false when the tuples are incompatible.
  bool align(const NamedSet &SA, const NamedSet &SB, Problem &A,
             Problem &B) {
    if (SA.Tuple != SB.Tuple)
      return false;
    Problem Layout;
    std::map<std::string, VarId> ByName;
    auto addAll = [&](const NamedSet &S) {
      for (VarId V = 0; V != static_cast<VarId>(S.P.getNumVars()); ++V) {
        const std::string &N = S.P.getVarName(V);
        if (!ByName.count(N))
          ByName[N] = Layout.addVar(N, S.P.isProtected(V));
      }
    };
    addAll(SA);
    addAll(SB);

    auto rebuild = [&](const NamedSet &S, Problem &Out) {
      Out = Layout.cloneLayout();
      for (const Constraint &Row : S.P.constraints()) {
        Constraint &New = Out.addRow(Row.getKind(), Row.isRed());
        New.setConstant(Row.getConstant());
        for (VarId V = 0; V != static_cast<VarId>(S.P.getNumVars()); ++V)
          if (Row.getCoeff(V) != 0)
            Out.constraints().back().setCoeff(
                ByName.at(S.P.getVarName(V)), Row.getCoeff(V));
      }
    };
    rebuild(SA, A);
    rebuild(SB, B);
    return true;
  }

  std::optional<NamedSet> intersect(const std::string &AName,
                                    const std::string &BName) {
    const NamedSet *SA = getSet(AName);
    if (!SA)
      return std::nullopt;
    const NamedSet *SB = getSet(BName);
    if (!SB)
      return std::nullopt;
    Problem A, B;
    if (!align(*SA, *SB, A, B)) {
      error("cannot intersect sets with different tuples");
      return std::nullopt;
    }
    for (const Constraint &Row : B.constraints())
      A.addConstraint(Row);
    NamedSet Out;
    Out.Tuple = SA->Tuple;
    Out.P = std::move(A);
    return Out;
  }

  std::map<std::string, NamedSet> &Sets;
  Scanner Scan;
  Calculator &Calc;
  Token Cur;
  std::string Out;
  bool Errored = false;
  bool Fatal = false;
  std::vector<std::pair<std::string, VarId>> ExistsScope;
};

} // namespace

std::string Calculator::run(std::string_view Script) {
  OmegaContextScope Scope(Ctx); // route every Omega call to this calculator
  Interpreter I(Sets, Script, *this);
  std::string Out = I.run();
  HadError = I.hadError();
  return Out;
}
