//===- calc/Calc.h - A small Omega calculator ------------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual calculator over integer constraint sets, in the spirit of the
/// Omega Calculator Pugh's group distributed with the Omega library. Sets
/// are written
///
/// \code
///   P := {[i,j] : 1 <= i <= n && i < j && exists w : (j = 2w)};
///   sat P;
///   solution P;
///   project P onto [i];
///   gist P given Q;
///   R := P && Q;
///   simplify R;
///   print R;
/// \endcode
///
/// Tuple variables are the set's dimensions; every other identifier is a
/// free symbolic constant, shared across sets by name. `exists` introduces
/// wildcard variables. The calculator is both a REPL backend
/// (tools/omega-calc) and a scriptable test surface.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_CALC_CALC_H
#define OMEGA_CALC_CALC_H

#include "obs/Trace.h"
#include "omega/OmegaContext.h"
#include "omega/Problem.h"
#include "omega/QueryCache.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace omega {
namespace calc {

/// One named set: a Problem plus the names of its tuple variables.
struct NamedSet {
  Problem P;
  std::vector<std::string> Tuple;
};

class Calculator {
public:
  Calculator() : Ctx(&Cache) {}

  /// Executes a whole script; returns everything the commands printed
  /// (including error messages, which also set hadError()). Runs under
  /// the calculator's own OmegaContext, so stats and memoized queries
  /// accumulate per calculator and never touch the process default.
  std::string run(std::string_view Script);

  bool hadError() const { return HadError; }

  /// The calculator's private context (stats sink + query cache).
  OmegaContext &context() { return Ctx; }

  /// Looks up a set defined by a previous run() call (tests use this).
  const NamedSet *lookup(const std::string &Name) const {
    auto It = Sets.find(Name);
    return It == Sets.end() ? nullptr : &It->second;
  }

  /// `trace on;`: starts recording spans for every subsequent query into a
  /// fresh tracer (discarding any earlier recording).
  void startTrace() {
    Tracer = std::make_unique<obs::Tracer>();
    Ctx.Trace = &Tracer->registerBuffer("calc", &Ctx.Stats);
  }

  /// `trace off;`: stops recording and returns the profile report of the
  /// traced window (or a notice when tracing was never on).
  std::string stopTrace() {
    if (!Tracer)
      return "tracing was already off\n";
    Ctx.Trace = nullptr;
    std::string Report = Tracer->profileReport(/*Json=*/false);
    Tracer.reset();
    return Report;
  }

  bool tracing() const { return Tracer != nullptr; }

  /// The active tracer (null unless between `trace on` and `trace off`).
  obs::Tracer *tracer() { return Tracer.get(); }

private:
  std::map<std::string, NamedSet> Sets;
  QueryCache Cache;
  OmegaContext Ctx;
  std::unique_ptr<obs::Tracer> Tracer;
  bool HadError = false;
};

} // namespace calc
} // namespace omega

#endif // OMEGA_CALC_CALC_H
