//===- symbolic/Induction.h - Scalar recurrence recognition ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognition of monotone scalar recurrences ("k := k + j"), the
/// "non-linear induction variable recognition and summations" extension
/// Section 5 invokes to handle Example 11 (program s141 of [LCD91], which
/// no compiler in that study vectorized). A scalar all of whose writes
/// are accumulations with a provably non-negative (or positive) addend is
/// monotone over execution order; the symbolic analysis instantiates that
/// as linear facts between uninterpreted reads of the scalar, which is
/// enough to disprove the false a(k) self-dependences.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SYMBOLIC_INDUCTION_H
#define OMEGA_SYMBOLIC_INDUCTION_H

#include "ir/Sema.h"

#include <map>
#include <string>
#include <vector>

namespace omega {
namespace symbolic {

/// Monotonicity of one recognized scalar over execution order.
enum class Monotonicity : uint8_t {
  Unknown,
  Increasing,         ///< every update adds e >= 0
  StrictlyIncreasing, ///< every update adds e >= 1
  Decreasing,         ///< every update adds e <= 0
  StrictlyDecreasing, ///< every update adds e <= -1
};

struct ScalarRecurrence {
  Monotonicity Direction = Monotonicity::Unknown;
  /// The accesses that write the scalar (all are recognized updates).
  std::vector<const ir::Access *> Updates;
};

struct InductionInfo {
  std::map<std::string, ScalarRecurrence> Scalars;

  const ScalarRecurrence *recurrenceOf(const std::string &Name) const {
    auto It = Scalars.find(Name);
    return It == Scalars.end() ? nullptr : &It->second;
  }
};

/// Scans the program for scalars whose every write is an accumulation
/// with an addend of provable sign (decided with the Omega test under the
/// update's iteration space).
InductionInfo recognizeInductions(const ir::AnalyzedProgram &AP);

} // namespace symbolic
} // namespace omega

#endif // OMEGA_SYMBOLIC_INDUCTION_H
