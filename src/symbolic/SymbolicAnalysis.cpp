//===- symbolic/SymbolicAnalysis.cpp --------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymbolicAnalysis.h"

#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"
#include "symbolic/Induction.h"

#include <map>
#include <set>

using namespace omega;
using namespace omega::symbolic;
using omega::deps::DepSpace;

namespace {

/// The dependence problem with red (dependence) and black (known) rows,
/// plus bookkeeping for symbol names and index-array terms.
struct SymProblem {
  DepSpace Space;
  Problem P;
  std::map<std::string, VarId> SymByName;
  bool Infeasible = false;

  SymProblem(const ir::AnalyzedProgram &AP, const ir::Access &Src,
             const ir::Access &Dst)
      : Space(AP, {&Src, &Dst}), P(Space.base()) {}

  VarId varForName(const std::string &Name) {
    auto It = SymByName.find(Name);
    if (It != SymByName.end())
      return It->second;
    const ir::AnalyzedProgram &AP = Space.program();
    ir::SymId S = AP.Symbols.lookup(Name);
    VarId V = -1;
    if (S >= 0) {
      // Use the space's shared variable when the accesses reference the
      // symbol; otherwise create a fresh column for the assertion.
      for (VarId Candidate = 0;
           Candidate != static_cast<VarId>(P.getNumVars()); ++Candidate)
        if (P.getVarName(Candidate) == Name && P.isProtected(Candidate)) {
          V = Candidate;
          break;
        }
    }
    if (V < 0)
      V = P.addVar(Name);
    SymByName[Name] = V;
    return V;
  }

  void accumulateSymExpr(Constraint &Row, const SymExpr &E, int64_t Scale) {
    for (const auto &[Name, Coeff] : E.Terms)
      Row.addToCoeff(varForName(Name), checkedMul(Coeff, Scale));
    Row.addToConstant(checkedMul(E.Const, Scale));
  }

  /// Adds "Lo <= E" style rows where E is an instance affine expression.
  void addInstBound(unsigned Inst, const ir::AffineExpr &E,
                    const SymExpr &Bound, bool IsLower) {
    Constraint &Row = P.addRow(ConstraintKind::GEQ);
    // IsLower: E - Bound >= 0; else Bound - E >= 0.
    Space.accumulate(Row, Inst, E, IsLower ? 1 : -1);
    accumulateSymExpr(Row, Bound, IsLower ? -1 : 1);
  }
};

/// Resolves a SymRelation into a row of \p SP (black).
void addRelation(SymProblem &SP, const SymRelation &R) {
  Constraint &Row = SP.P.addRow(R.Relation == SymRelation::Rel::EQ
                                    ? ConstraintKind::EQ
                                    : ConstraintKind::GEQ);
  // Normal orientation: Lhs REL Rhs becomes (Rhs - Lhs) or (Lhs - Rhs).
  int64_t LScale = 0, RScale = 0, Adjust = 0;
  switch (R.Relation) {
  case SymRelation::Rel::LE: // Rhs - Lhs >= 0
    LScale = -1;
    RScale = 1;
    break;
  case SymRelation::Rel::LT: // Rhs - Lhs - 1 >= 0
    LScale = -1;
    RScale = 1;
    Adjust = -1;
    break;
  case SymRelation::Rel::EQ: // Lhs - Rhs == 0
    LScale = 1;
    RScale = -1;
    break;
  case SymRelation::Rel::GE: // Lhs - Rhs >= 0
    LScale = 1;
    RScale = -1;
    break;
  case SymRelation::Rel::GT: // Lhs - Rhs - 1 >= 0
    LScale = 1;
    RScale = -1;
    Adjust = -1;
    break;
  }
  SP.accumulateSymExpr(Row, R.Lhs, LScale);
  SP.accumulateSymExpr(Row, R.Rhs, RScale);
  Row.addToConstant(Adjust);
}

/// Adds the in-bounds facts for one instance's subscripts, when its
/// array's bounds were declared.
void addInBoundsFacts(SymProblem &SP, const AssertionDB &DB) {
  if (!DB.inBoundsAssumed())
    return;
  for (unsigned Inst = 0; Inst != SP.Space.getNumInstances(); ++Inst) {
    const ir::Access &A = SP.Space.access(Inst);
    if (const ArrayBounds *B = DB.boundsOf(A.Array)) {
      unsigned Dims = std::min(B->Dims.size(), A.Subscripts.size());
      for (unsigned D = 0; D != Dims; ++D) {
        SP.addInstBound(Inst, A.Subscripts[D], B->Dims[D].first, true);
        SP.addInstBound(Inst, A.Subscripts[D], B->Dims[D].second, false);
      }
    }
  }
  // Index-array reads used inside subscripts: their own subscripts are in
  // the index array's bounds too.
  const ir::AnalyzedProgram &AP = SP.Space.program();
  for (const DepSpace::TermVar &T : SP.Space.termVars()) {
    const ir::SymbolInfo &Info = AP.Symbols.info(T.Sym);
    if (!Info.IsIndexArrayRead)
      continue;
    const ArrayBounds *B = DB.boundsOf(Info.IndexArray);
    if (!B)
      continue;
    unsigned Inst = T.Inst < 0 ? 0 : T.Inst;
    unsigned Dims = std::min(B->Dims.size(), Info.IndexSubs.size());
    for (unsigned D = 0; D != Dims; ++D) {
      SP.addInstBound(Inst, Info.IndexSubs[D], B->Dims[D].first, true);
      SP.addInstBound(Inst, Info.IndexSubs[D], B->Dims[D].second, false);
    }
  }
}

/// Do the given (known, black) constraints already imply Row?
bool knownImplies(const Problem &P, const Constraint &Row) {
  Problem Target = P.cloneLayout();
  Target.addConstraint(Row);
  return implies(P, Target);
}

/// Adds the monotonicity facts a recognized scalar recurrence justifies
/// between two cross-instance reads of the scalar. Instance 0 executes
/// before instance 1 under the space's precedes constraints, so for an
/// increasing scalar the later read sees a value >= the earlier one; it
/// is strictly greater when some update provably executes in between:
/// an unconditional update (not nested below the shared loops) textually
/// after the earlier read, with the dependence carried at a loop
/// enclosing the update.
void instantiateRecurrence(SymProblem &SP, const ScalarRecurrence &Rec,
                           const DepSpace::TermVar &A,
                           const DepSpace::TermVar &B, unsigned Level) {
  if (Rec.Direction == Monotonicity::Unknown)
    return;
  // Orient so Lo's instance executes before Hi's.
  const DepSpace::TermVar &Lo = A.Inst <= B.Inst ? A : B;
  const DepSpace::TermVar &Hi = A.Inst <= B.Inst ? B : A;
  bool Increasing = Rec.Direction == Monotonicity::Increasing ||
                    Rec.Direction == Monotonicity::StrictlyIncreasing;

  bool Strict = false;
  if (Level >= 1 &&
      (Rec.Direction == Monotonicity::StrictlyIncreasing ||
       Rec.Direction == Monotonicity::StrictlyDecreasing)) {
    const ir::Access &AccLo = SP.Space.access(Lo.Inst);
    for (const ir::Access *U : Rec.Updates) {
      unsigned Shared = ir::AnalyzedProgram::numCommonLoops(*U, AccLo);
      if (U->Loops.size() == Shared && Shared >= Level &&
          ir::AnalyzedProgram::textuallyBefore(AccLo, *U)) {
        Strict = true;
        break;
      }
    }
  }
  // Increasing: t_hi - t_lo >= (Strict ? 1 : 0); decreasing mirrored.
  Constraint &Row = SP.P.addRow(ConstraintKind::GEQ);
  Row.setCoeff(Hi.Var, Increasing ? 1 : -1);
  Row.setCoeff(Lo.Var, Increasing ? -1 : 1);
  Row.setConstant(Strict ? -1 : 0);
}

/// Pairwise instantiation of function consistency ("same subscripts give
/// the same value"), the strictly-increasing property, and recognized
/// scalar recurrences, over the black facts gathered so far.
void instantiateTermFacts(SymProblem &SP, const AssertionDB &DB,
                          unsigned Level, const InductionInfo &Ind) {
  const ir::AnalyzedProgram &AP = SP.Space.program();
  std::set<std::string> WrittenArrays;
  for (const ir::Access &A : AP.Accesses)
    if (A.IsWrite)
      WrittenArrays.insert(A.Array);

  std::vector<DepSpace::TermVar> Terms = SP.Space.termVars();
  for (unsigned I = 0; I != Terms.size(); ++I) {
    const ir::SymbolInfo &InfoA = AP.Symbols.info(Terms[I].Sym);
    if (!InfoA.IsIndexArrayRead)
      continue;
    for (unsigned J = I + 1; J != Terms.size(); ++J) {
      const ir::SymbolInfo &InfoB = AP.Symbols.info(Terms[J].Sym);
      if (!InfoB.IsIndexArrayRead || InfoA.IndexArray != InfoB.IndexArray ||
          InfoA.IndexSubs.size() != InfoB.IndexSubs.size())
        continue;
      unsigned InstA = Terms[I].Inst < 0 ? 0 : Terms[I].Inst;
      unsigned InstB = Terms[J].Inst < 0 ? 0 : Terms[J].Inst;
      bool Mutable = WrittenArrays.count(InfoA.IndexArray) != 0;
      bool SameInstance = Terms[I].Inst == Terms[J].Inst;

      // Recognized monotone scalar: relate reads across instances.
      if (Mutable && !SameInstance && InfoA.IndexSubs.empty()) {
        if (const ScalarRecurrence *Rec =
                Ind.recurrenceOf(InfoA.IndexArray)) {
          instantiateRecurrence(SP, *Rec, Terms[I], Terms[J], Level);
          continue;
        }
      }

      // Function consistency is only valid when no write can intervene:
      // within one instance, or for arrays the program never writes.
      if (Mutable && !SameInstance)
        continue;

      // subs_a == subs_b (all dims)?
      Problem EqTest = SP.P.cloneLayout();
      for (unsigned D = 0; D != InfoA.IndexSubs.size(); ++D) {
        Constraint &Row = EqTest.addRow(ConstraintKind::EQ);
        SP.Space.accumulate(Row, InstA, InfoA.IndexSubs[D], 1);
        SP.Space.accumulate(Row, InstB, InfoB.IndexSubs[D], -1);
      }
      if (implies(SP.P, EqTest)) {
        Constraint &Row = SP.P.addRow(ConstraintKind::EQ);
        Row.setCoeff(Terms[I].Var, 1);
        Row.setCoeff(Terms[J].Var, -1);
        continue;
      }

      if (!DB.isStrictlyIncreasing(InfoA.IndexArray) ||
          InfoA.IndexSubs.size() != 1)
        continue;
      // For a strictly increasing integer array, sub_x <= sub_y implies
      // the full affine fact Q[sub_y] - Q[sub_x] >= sub_y - sub_x.
      auto subLE = [&](unsigned X, unsigned XInst, unsigned Y,
                       unsigned YInst) {
        // sub_y - sub_x >= 0.
        Constraint Row(ConstraintKind::GEQ, SP.P.getNumVars());
        SP.Space.accumulate(Row, YInst,
                            AP.Symbols.info(Terms[Y].Sym).IndexSubs[0], 1);
        SP.Space.accumulate(Row, XInst,
                            AP.Symbols.info(Terms[X].Sym).IndexSubs[0], -1);
        return Row;
      };
      auto addIncreasingFact = [&](unsigned X, unsigned XInst, unsigned Y,
                                   unsigned YInst) {
        // (t_y - t_x) - (sub_y - sub_x) >= 0.
        Constraint &Row = SP.P.addRow(ConstraintKind::GEQ);
        Row.setCoeff(Terms[Y].Var, 1);
        Row.setCoeff(Terms[X].Var, -1);
        SP.Space.accumulate(Row, YInst,
                            AP.Symbols.info(Terms[Y].Sym).IndexSubs[0], -1);
        SP.Space.accumulate(Row, XInst,
                            AP.Symbols.info(Terms[X].Sym).IndexSubs[0], 1);
      };
      if (knownImplies(SP.P, subLE(I, InstA, J, InstB)))
        addIncreasingFact(I, InstA, J, InstB);
      else if (knownImplies(SP.P, subLE(J, InstB, I, InstA)))
        addIncreasingFact(J, InstB, I, InstA);
    }
  }
}

/// Instantiates injectivity: whenever the whole system forces the values
/// equal, the subscripts must be equal too (red rows).
void instantiateInjectivity(SymProblem &SP, const AssertionDB &DB) {
  const ir::AnalyzedProgram &AP = SP.Space.program();
  std::vector<DepSpace::TermVar> Terms = SP.Space.termVars();
  for (unsigned I = 0; I != Terms.size(); ++I) {
    const ir::SymbolInfo &InfoA = AP.Symbols.info(Terms[I].Sym);
    if (!InfoA.IsIndexArrayRead || !DB.isInjective(InfoA.IndexArray))
      continue;
    for (unsigned J = I + 1; J != Terms.size(); ++J) {
      const ir::SymbolInfo &InfoB = AP.Symbols.info(Terms[J].Sym);
      if (!InfoB.IsIndexArrayRead || InfoA.IndexArray != InfoB.IndexArray ||
          InfoA.IndexSubs.size() != InfoB.IndexSubs.size())
        continue;
      Problem ValueEq = SP.P.cloneLayout();
      Constraint &VRow = ValueEq.addRow(ConstraintKind::EQ);
      VRow.setCoeff(Terms[I].Var, 1);
      VRow.setCoeff(Terms[J].Var, -1);
      if (!implies(SP.P, ValueEq))
        continue;
      unsigned InstA = Terms[I].Inst < 0 ? 0 : Terms[I].Inst;
      unsigned InstB = Terms[J].Inst < 0 ? 0 : Terms[J].Inst;
      for (unsigned D = 0; D != InfoA.IndexSubs.size(); ++D) {
        Constraint &Row = SP.P.addRow(ConstraintKind::EQ);
        Row.setRed(true);
        SP.Space.accumulate(Row, InstA, InfoA.IndexSubs[D], 1);
        SP.Space.accumulate(Row, InstB, InfoB.IndexSubs[D], -1);
      }
    }
  }
}

/// Builds the full symbolic dependence problem: black knowledge plus red
/// dependence rows.
SymProblem buildSymbolicProblem(const ir::AnalyzedProgram &AP,
                                const ir::Access &Src, const ir::Access &Dst,
                                unsigned Level, const AssertionDB &DB,
                                bool WithInjectivity) {
  SymProblem SP(AP, Src, Dst);

  if (Level == 0 && !SP.Space.textuallyBefore(0, 1)) {
    SP.Infeasible = true;
    return SP;
  }

  // Black: what we know.
  SP.Space.addIterationSpace(SP.P, 0);
  SP.Space.addIterationSpace(SP.P, 1);
  SP.Space.addPrecedesAtLevel(SP.P, 0, 1, Level);
  for (const SymRelation &R : DB.relations())
    addRelation(SP, R);
  addInBoundsFacts(SP, DB);
  instantiateTermFacts(SP, DB, Level, recognizeInductions(AP));

  // Red: the dependence itself.
  unsigned FirstRed = SP.P.getNumConstraints();
  SP.Space.addSubscriptsEqual(SP.P, 0, 1);
  for (unsigned I = FirstRed; I != SP.P.getNumConstraints(); ++I)
    SP.P.constraints()[I].setRed(true);

  if (WithInjectivity)
    instantiateInjectivity(SP, DB);
  return SP;
}

/// gist(pi(All) given pi(Black)) over the kept variables, computed with
/// two independent projections (exact whenever neither splinters, in
/// which case the paper's combined red/black pass would also be exact).
struct ProjectedGist {
  Problem Gist;
  bool Exact = true;
};

ProjectedGist gistOfProjections(const Problem &All, const Problem &Black,
                                const std::vector<bool> &Keep) {
  ProjectedGist Out;
  ProjectionResult ProjAll = projectOntoMask(All, Keep);
  std::vector<bool> KeepBlack = Keep;
  KeepBlack.resize(Black.getNumVars(), false);
  ProjectionResult ProjBlack = projectOntoMask(Black, KeepBlack);

  const Problem &PQ =
      ProjAll.isSinglePiece() ? ProjAll.Pieces.front() : ProjAll.Approx;
  const Problem &Pp = ProjBlack.isSinglePiece() ? ProjBlack.Pieces.front()
                                                : ProjBlack.Approx;
  Out.Exact = ProjAll.isSinglePiece() && ProjBlack.isSinglePiece();

  unsigned BaseVars = std::min(All.getNumVars(), Black.getNumVars());
  Problem Context = conjoinExtending(PQ.cloneLayout(), Pp, BaseVars);
  Problem Candidates = PQ;
  while (Candidates.getNumVars() < Context.getNumVars())
    Candidates.addWildcard();
  Out.Gist = gist(Candidates, Context);
  return Out;
}

} // namespace

SymbolicCondition symbolic::dependenceCondition(
    const ir::AnalyzedProgram &AP, const ir::Access &Src,
    const ir::Access &Dst, unsigned Level, const AssertionDB &DB,
    const std::vector<std::string> &KeepSymbols) {
  SymbolicCondition Out;
  SymProblem SP = buildSymbolicProblem(AP, Src, Dst, Level, DB,
                                       /*WithInjectivity=*/true);
  if (SP.Infeasible || !isSatisfiable(SP.P)) {
    Out.Impossible = true;
    Out.Text = "FALSE";
    return Out;
  }

  std::vector<bool> Keep(SP.P.getNumVars(), false);
  for (const std::string &Name : KeepSymbols) {
    VarId V = SP.varForName(Name);
    Keep.resize(SP.P.getNumVars(), false);
    Keep[V] = true;
  }

  Problem Black = SP.P.cloneLayout();
  for (const Constraint &Row : SP.P.constraints())
    if (!Row.isRed())
      Black.addConstraint(Row);

  ProjectedGist G = gistOfProjections(SP.P, Black, Keep);
  Out.Condition = std::move(G.Gist);
  Out.Exact = G.Exact;
  if (!isSatisfiable(Out.Condition)) {
    Out.Impossible = true;
    Out.Text = "FALSE";
    return Out;
  }

  std::string Text;
  for (const Constraint &Row : Out.Condition.constraints()) {
    if (!Text.empty())
      Text += " && ";
    Constraint Clean = Row;
    Clean.setRed(false);
    Text += Out.Condition.constraintToString(Clean);
  }
  Out.Text = Text.empty() ? "TRUE" : Text;
  return Out;
}

bool symbolic::dependencePossible(const ir::AnalyzedProgram &AP,
                                  const ir::Access &Src,
                                  const ir::Access &Dst, unsigned Level,
                                  const AssertionDB &DB) {
  SymProblem SP = buildSymbolicProblem(AP, Src, Dst, Level, DB,
                                       /*WithInjectivity=*/true);
  return !SP.Infeasible && isSatisfiable(SP.P);
}

std::vector<UserQuery> symbolic::generateQueries(const ir::AnalyzedProgram &AP,
                                                 const ir::Access &Src,
                                                 const ir::Access &Dst,
                                                 unsigned Level,
                                                 const AssertionDB &DB) {
  std::vector<UserQuery> Out;
  // Queries replace unknown index-array facts, so injectivity is not
  // instantiated here.
  SymProblem SP = buildSymbolicProblem(AP, Src, Dst, Level, DB,
                                       /*WithInjectivity=*/false);
  if (SP.Infeasible || !isSatisfiable(SP.P))
    return Out; // nothing to ask: the dependence is already impossible

  // Introduce named subscript variables for the index-array terms (the
  // paper's s, s') and rename the value variables to "Q[a]" style.
  std::vector<DepSpace::TermVar> Terms = SP.Space.termVars();
  std::map<VarId, VarId> SubVarOf; // term var -> subscript var
  char NextName = 'a';
  for (const DepSpace::TermVar &T : Terms) {
    const ir::SymbolInfo &Info = AP.Symbols.info(T.Sym);
    if (!Info.IsIndexArrayRead || Info.IndexSubs.size() != 1)
      continue;
    std::string SubName(1, NextName++);
    VarId S = SP.P.addVar(SubName);
    Constraint &Row = SP.P.addRow(ConstraintKind::EQ);
    Row.setCoeff(S, -1);
    SP.Space.accumulate(Row, T.Inst < 0 ? 0 : T.Inst, Info.IndexSubs[0], 1);
    SubVarOf[T.Var] = S;
    SP.P.setVarName(T.Var, Info.IndexArray + "[" + SubName + "]");
  }
  if (SubVarOf.empty())
    return Out;

  // Keep the subscript vars, the value vars, and the symbolic constants;
  // gist the dependence information given the black knowledge.
  std::vector<bool> Keep(SP.P.getNumVars(), false);
  for (const auto &[TermVar, SubVar] : SubVarOf) {
    Keep[TermVar] = true;
    Keep[SubVar] = true;
  }
  for (VarId V : SP.Space.symConstVars())
    Keep[V] = true;

  Problem Black = SP.P.cloneLayout();
  for (const Constraint &Row : SP.P.constraints())
    if (!Row.isRed())
      Black.addConstraint(Row);

  ProjectedGist G = gistOfProjections(SP.P, Black, Keep);
  if (G.Gist.getNumConstraints() == 0)
    return Out; // the dependence holds regardless of the index arrays

  // Context: the black knowledge over the same variables.
  ProjectionResult Ctx = projectOntoMask(Black, Keep);

  UserQuery Q;
  for (const DepSpace::TermVar &T : Terms)
    if (SubVarOf.count(T.Var)) {
      Q.Array = AP.Symbols.info(T.Sym).IndexArray;
      break;
    }
  std::string CtxText;
  if (!Ctx.Pieces.empty())
    for (const Constraint &Row : Ctx.Pieces.front().constraints()) {
      bool TouchesKept = false;
      for (const auto &[TermVar, SubVar] : SubVarOf)
        TouchesKept |= Row.involves(SubVar) || Row.involves(TermVar);
      if (!TouchesKept)
        continue;
      if (!CtxText.empty())
        CtxText += " && ";
      CtxText += Ctx.Pieces.front().constraintToString(Row);
    }
  Q.Condition = CtxText;

  std::string Offending;
  for (const Constraint &Row : G.Gist.constraints()) {
    Constraint Clean = Row;
    Clean.setRed(false);
    if (!Offending.empty())
      Offending += " && ";
    Offending += G.Gist.constraintToString(Clean);
  }
  Q.Offending = Offending;

  // A concrete offending scenario makes the question easier to answer:
  // solve context && offending and report the kept variables.
  {
    Problem Scenario = SP.P;
    if (std::optional<std::vector<int64_t>> Sol = findSolution(Scenario)) {
      std::string Ex;
      for (const auto &[TermVar, SubVar] : SubVarOf) {
        if (!Ex.empty())
          Ex += ", ";
        Ex += Scenario.getVarName(SubVar) + " = " +
              std::to_string((*Sol)[SubVar]);
        Ex += ", " + Scenario.getVarName(TermVar) + " = " +
              std::to_string((*Sol)[TermVar]);
      }
      Q.Example = Ex;
    }
  }

  Q.Text = "Is it the case that for all subscripts such that " +
           (CtxText.empty() ? std::string("the references are in bounds")
                            : CtxText) +
           ", the following never happens?\n    " + Offending;
  if (!Q.Example.empty())
    Q.Text += "\n    (for instance: " + Q.Example + ")";
  Out.push_back(std::move(Q));
  return Out;
}
