//===- symbolic/SymbolicAnalysis.h - Section 5 symbolic dependence tests --===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5 of the paper: a data dependence may exist only under certain
/// conditions on symbolic variables. This module
///
///  * computes those conditions exactly by projecting the dependence
///    problem onto chosen symbolic variables and taking the gist relative
///    to what is already known (user assertions, in-bounds assumptions):
///    Example 7's "the outer-loop-carried dependence exists iff
///    1 <= x <= 50";
///  * handles index arrays and non-linear terms as uninterpreted symbols,
///    instantiating user-asserted properties (injective, strictly
///    increasing) pairwise: Example 8's "no output dependence if Q is a
///    permutation";
///  * renders the concise user queries the paper's dialog asks when the
///    assertions are not sufficient to rule a dependence out.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SYMBOLIC_SYMBOLICANALYSIS_H
#define OMEGA_SYMBOLIC_SYMBOLICANALYSIS_H

#include "deps/DepSpace.h"
#include "symbolic/Assertions.h"

#include <optional>
#include <string>
#include <vector>

namespace omega {
namespace symbolic {

/// The conditions (over kept symbolic variables) under which a dependence
/// exists.
struct SymbolicCondition {
  Problem Condition; ///< gist over the kept variables; empty == always
  bool Exact = true; ///< false when a projection splintered
  bool Impossible = false; ///< the dependence cannot exist at all
  std::string Text;  ///< human-readable rendering

  bool isAlways() const {
    return !Impossible && Condition.getNumConstraints() == 0;
  }
};

/// Computes (gist pi(p && q) given pi(p)) for the dependence from \p Src
/// to \p Dst carried at \p Level (0 == loop-independent), where p is what
/// is known (loop bounds, the restraint vector, assertions, in-bounds
/// facts) and q is the dependence condition (subscript equality). The
/// projection keeps exactly the symbolic constants named in
/// \p KeepSymbols.
SymbolicCondition
dependenceCondition(const ir::AnalyzedProgram &AP, const ir::Access &Src,
                    const ir::Access &Dst, unsigned Level,
                    const AssertionDB &DB,
                    const std::vector<std::string> &KeepSymbols);

/// Is a dependence at \p Level from \p Src to \p Dst possible at all given
/// the assertions? Instantiates index-array properties pairwise.
bool dependencePossible(const ir::AnalyzedProgram &AP, const ir::Access &Src,
                        const ir::Access &Dst, unsigned Level,
                        const AssertionDB &DB);

/// One concise question for the user, per Section 5's dialog.
struct UserQuery {
  std::string Array;     ///< the index array involved ("" for scalars)
  std::string Condition; ///< "1 <= a < b <= n" -- when the instances occur
  std::string Offending; ///< "Q[a] = Q[b]" -- what must never happen
  std::string Example;   ///< a concrete offending scenario, e.g. "a = 1, b = 2"
  std::string Text;      ///< the full rendered question
};

/// Generates the queries whose "that never happens" answers would rule out
/// the dependence from \p Src to \p Dst at \p Level.
std::vector<UserQuery> generateQueries(const ir::AnalyzedProgram &AP,
                                       const ir::Access &Src,
                                       const ir::Access &Dst, unsigned Level,
                                       const AssertionDB &DB);

} // namespace symbolic
} // namespace omega

#endif // OMEGA_SYMBOLIC_SYMBOLICANALYSIS_H
