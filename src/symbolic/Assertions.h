//===- symbolic/Assertions.h - User assertion database (Section 5) -------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertions a user can supply to sharpen symbolic dependence analysis:
/// linear relations among symbolic constants ("50 <= n <= 100"), array
/// bounds ("all references to A are in bounds"), and properties of index
/// arrays ("Q is injective", "Q is strictly increasing") -- the kinds of
/// answers Section 5's dialog solicits.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SYMBOLIC_ASSERTIONS_H
#define OMEGA_SYMBOLIC_ASSERTIONS_H

#include "omega/Constraint.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace omega {
namespace symbolic {

/// A linear expression over *named* symbolic constants, used to state
/// assertions independent of any particular problem layout.
struct SymExpr {
  std::vector<std::pair<std::string, int64_t>> Terms;
  int64_t Const = 0;

  static SymExpr constant(int64_t C) {
    SymExpr E;
    E.Const = C;
    return E;
  }
  static SymExpr name(std::string N, int64_t Coeff = 1) {
    SymExpr E;
    E.Terms.push_back({std::move(N), Coeff});
    return E;
  }
  SymExpr plus(int64_t C) const {
    SymExpr E = *this;
    E.Const += C;
    return E;
  }
};

/// One asserted linear relation: Lhs REL Rhs.
struct SymRelation {
  enum class Rel : uint8_t { LE, LT, EQ, GE, GT };
  SymExpr Lhs;
  Rel Relation = Rel::LE;
  SymExpr Rhs;
};

/// Per-dimension array bounds, e.g. A[1:n, 1:m].
struct ArrayBounds {
  std::vector<std::pair<SymExpr, SymExpr>> Dims; // (lower, upper)
};

class AssertionDB {
public:
  /// Asserts Lhs REL Rhs among symbolic constants.
  void assertRelation(SymExpr Lhs, SymRelation::Rel Rel, SymExpr Rhs) {
    Relations.push_back(SymRelation{std::move(Lhs), Rel, std::move(Rhs)});
  }

  /// Declares the bounds of an array; combined with assumeInBounds(),
  /// every reference contributes "lo <= subscript <= hi" facts.
  void declareArrayBounds(const std::string &Array, ArrayBounds Bounds) {
    BoundsByArray[Array] = std::move(Bounds);
  }

  /// "All array references are in bounds" (the standing assumption in the
  /// paper's Section 5 examples).
  void assumeInBounds(bool V = true) { InBounds = V; }
  bool inBoundsAssumed() const { return InBounds; }

  const ArrayBounds *boundsOf(const std::string &Array) const {
    auto It = BoundsByArray.find(Array);
    return It == BoundsByArray.end() ? nullptr : &It->second;
  }

  /// Index-array properties.
  void assertInjective(const std::string &Array) { Injective.insert(Array); }
  void assertStrictlyIncreasing(const std::string &Array) {
    Increasing.insert(Array);
    Injective.insert(Array); // strictly increasing implies injective
  }
  /// A permutation array is injective (onto-ness adds nothing the pairwise
  /// machinery can use).
  void assertPermutation(const std::string &Array) {
    Injective.insert(Array);
  }

  bool isInjective(const std::string &Array) const {
    return Injective.count(Array) != 0;
  }
  bool isStrictlyIncreasing(const std::string &Array) const {
    return Increasing.count(Array) != 0;
  }

  const std::vector<SymRelation> &relations() const { return Relations; }

private:
  std::vector<SymRelation> Relations;
  std::map<std::string, ArrayBounds> BoundsByArray;
  std::set<std::string> Injective;
  std::set<std::string> Increasing;
  bool InBounds = false;
};

} // namespace symbolic
} // namespace omega

#endif // OMEGA_SYMBOLIC_ASSERTIONS_H
