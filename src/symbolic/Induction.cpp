//===- symbolic/Induction.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "symbolic/Induction.h"

#include "deps/DepSpace.h"
#include "omega/Satisfiability.h"

#include <functional>
#include <optional>

using namespace omega;
using namespace omega::symbolic;
using omega::ir::AffineExpr;

namespace {

const ir::AssignStmt *findAssign(const std::vector<ir::Stmt> &Body,
                                 unsigned Label) {
  for (const ir::Stmt &S : Body) {
    if (S.isFor()) {
      if (const ir::AssignStmt *A = findAssign(S.asFor().Body, Label))
        return A;
    } else if (S.asAssign().Label == Label) {
      return &S.asAssign();
    }
  }
  return nullptr;
}

bool referencesArray(const ir::Expr &E, const std::string &Name) {
  if (E.getKind() == ir::Expr::Kind::Read && E.getName() == Name)
    return true;
  for (const ir::Expr &Arg : E.args())
    if (referencesArray(Arg, Name))
      return true;
  return false;
}

/// Lowers \p E to an affine form over the write's enclosing loops and the
/// program's symbolic constants; nullopt when non-affine.
std::optional<AffineExpr> lowerAddend(const ir::Expr &E,
                                      const ir::AnalyzedProgram &AP,
                                      const ir::Access &Write) {
  switch (E.getKind()) {
  case ir::Expr::Kind::IntLit:
    return AffineExpr(E.getIntValue());
  case ir::Expr::Kind::VarRef: {
    for (const ir::LoopInfo *L : Write.Loops)
      if (L->SourceVar == E.getName())
        return L->sourceVarExpr();
    ir::SymId S = AP.Symbols.lookup(E.getName());
    if (S >= 0)
      return AffineExpr::symbol(S);
    return std::nullopt;
  }
  case ir::Expr::Kind::Add:
  case ir::Expr::Kind::Sub: {
    std::optional<AffineExpr> L = lowerAddend(E.args()[0], AP, Write);
    std::optional<AffineExpr> R = lowerAddend(E.args()[1], AP, Write);
    if (!L || !R)
      return std::nullopt;
    return E.getKind() == ir::Expr::Kind::Add ? *L + *R : *L - *R;
  }
  case ir::Expr::Kind::Neg: {
    std::optional<AffineExpr> Inner = lowerAddend(E.args()[0], AP, Write);
    if (!Inner)
      return std::nullopt;
    return Inner->negated();
  }
  case ir::Expr::Kind::Mul: {
    std::optional<AffineExpr> L = lowerAddend(E.args()[0], AP, Write);
    std::optional<AffineExpr> R = lowerAddend(E.args()[1], AP, Write);
    if (!L || !R)
      return std::nullopt;
    if (L->isConstant())
      return R->scaled(L->getConstant());
    if (R->isConstant())
      return L->scaled(R->getConstant());
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

/// The provable sign band of \p E over the write's iteration space.
Monotonicity addendDirection(const AffineExpr &E,
                             const ir::AnalyzedProgram &AP,
                             const ir::Access &Write) {
  deps::DepSpace Space(AP, {&Write});
  Problem Base = Space.base();
  Space.addIterationSpace(Base, 0);

  auto excluded = [&](int64_t UpperBoundOnE) {
    // Is "E <= UpperBoundOnE" impossible? (then E >= UpperBoundOnE + 1)
    Problem Test = Base;
    Constraint &Row = Test.addRow(ConstraintKind::GEQ);
    Space.accumulate(Row, 0, E, -1); // -E + UpperBound >= 0
    Row.addToConstant(UpperBoundOnE);
    return !isSatisfiable(std::move(Test));
  };
  auto excludedBelow = [&](int64_t LowerBoundOnE) {
    // Is "E >= LowerBoundOnE" impossible? (then E <= LowerBoundOnE - 1)
    Problem Test = Base;
    Constraint &Row = Test.addRow(ConstraintKind::GEQ);
    Space.accumulate(Row, 0, E, 1); // E - LowerBound >= 0
    Row.addToConstant(-LowerBoundOnE);
    return !isSatisfiable(std::move(Test));
  };

  if (excluded(0))
    return Monotonicity::StrictlyIncreasing; // E <= 0 impossible: E >= 1
  if (excluded(-1))
    return Monotonicity::Increasing; // E <= -1 impossible: E >= 0
  if (excludedBelow(0))
    return Monotonicity::StrictlyDecreasing; // E >= 0 impossible: E <= -1
  if (excludedBelow(1))
    return Monotonicity::Decreasing; // E >= 1 impossible: E <= 0
  return Monotonicity::Unknown;
}

/// Meet of two directions: the weakest claim covering both.
Monotonicity meet(Monotonicity A, Monotonicity B) {
  if (A == B)
    return A;
  auto increasingish = [](Monotonicity M) {
    return M == Monotonicity::Increasing ||
           M == Monotonicity::StrictlyIncreasing;
  };
  auto decreasingish = [](Monotonicity M) {
    return M == Monotonicity::Decreasing ||
           M == Monotonicity::StrictlyDecreasing;
  };
  if (increasingish(A) && increasingish(B))
    return Monotonicity::Increasing;
  if (decreasingish(A) && decreasingish(B))
    return Monotonicity::Decreasing;
  return Monotonicity::Unknown;
}

} // namespace

InductionInfo symbolic::recognizeInductions(const ir::AnalyzedProgram &AP) {
  InductionInfo Info;
  // Candidate scalars: zero-dimensional writes.
  std::map<std::string, std::vector<const ir::Access *>> WritesByScalar;
  for (const ir::Access &A : AP.Accesses)
    if (A.IsWrite && A.Subscripts.empty())
      WritesByScalar[A.Array].push_back(&A);

  for (const auto &[Name, Writes] : WritesByScalar) {
    ScalarRecurrence Rec;
    bool OK = true;
    for (const ir::Access *W : Writes) {
      const ir::AssignStmt *Stmt = findAssign(AP.Source.Body, W->StmtLabel);
      if (!Stmt || Stmt->Array != Name) {
        OK = false;
        break;
      }
      // Pattern: Name := Name + e, with the self-read occurring exactly
      // once, positively, in the top-level additive chain.
      std::vector<std::pair<int, const ir::Expr *>> Leaves;
      std::function<void(const ir::Expr &, int)> Flatten =
          [&](const ir::Expr &E, int Sign) {
            switch (E.getKind()) {
            case ir::Expr::Kind::Add:
              Flatten(E.args()[0], Sign);
              Flatten(E.args()[1], Sign);
              return;
            case ir::Expr::Kind::Sub:
              Flatten(E.args()[0], Sign);
              Flatten(E.args()[1], -Sign);
              return;
            case ir::Expr::Kind::Neg:
              Flatten(E.args()[0], -Sign);
              return;
            default:
              Leaves.push_back({Sign, &E});
            }
          };
      Flatten(Stmt->RHS, +1);

      unsigned SelfReads = 0;
      std::optional<AffineExpr> Addend = AffineExpr(0);
      for (const auto &[Sign, Leaf] : Leaves) {
        bool IsSelf = Leaf->getKind() == ir::Expr::Kind::Read &&
                      Leaf->getName() == Name && Leaf->args().empty();
        if (IsSelf) {
          if (Sign != +1 || ++SelfReads > 1) {
            Addend.reset();
            break;
          }
          continue;
        }
        if (referencesArray(*Leaf, Name)) {
          Addend.reset();
          break;
        }
        if (!Addend)
          break;
        std::optional<AffineExpr> E = lowerAddend(*Leaf, AP, *W);
        if (!E) {
          Addend.reset();
          break;
        }
        *Addend += E->scaled(Sign);
      }
      if (!Addend || SelfReads != 1) {
        OK = false;
        break;
      }
      Monotonicity Dir = addendDirection(*Addend, AP, *W);
      if (Dir == Monotonicity::Unknown) {
        OK = false;
        break;
      }
      Rec.Direction = Rec.Updates.empty() ? Dir : meet(Rec.Direction, Dir);
      if (Rec.Direction == Monotonicity::Unknown) {
        OK = false;
        break;
      }
      Rec.Updates.push_back(W);
    }
    if (OK && !Rec.Updates.empty())
      Info.Scalars[Name] = Rec;
  }
  return Info;
}
