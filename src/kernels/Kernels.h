//===- kernels/Kernels.h - The evaluation workload corpus ----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny-language sources the evaluation runs on: the CHOLSKY kernel of
/// Figure 2 (hand-translated, as the paper's authors did for the NAS
/// kernels), the paper's running Examples 1-11 where expressible, and a
/// suite of kernels in the spirit of the tiny distribution (Cholesky, LU,
/// wavefronts, and some contrived stress cases).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_KERNELS_KERNELS_H
#define OMEGA_KERNELS_KERNELS_H

#include <string>
#include <vector>

namespace omega {
namespace kernels {

struct Kernel {
  const char *Name;
  const char *Source;
};

/// The CHOLSKY kernel of Figure 2 in tiny form. Statement labels: the
/// paper uses the FORTRAN DO-labels; see cholskyPaperLabel() for the
/// mapping from our sequential statement numbers.
const char *cholsky();

/// Maps our 1-based statement number (program order) to the paper's
/// FORTRAN statement label in Figure 2.
unsigned cholskyPaperLabel(unsigned StmtNumber);

/// The paper's standalone Examples 1-6 (Section 4).
const char *example1();
const char *example2();
const char *example3();
const char *example4();
const char *example5();
const char *example6();

/// The paper's symbolic Examples 7, 8, 10, 11 (Section 5). Example 9
/// (array values in loop bounds) is exampleIndexBounds().
const char *example7();
const char *example8();
const char *exampleIndexBounds(); // Example 9
const char *example10();
const char *example11();

/// The whole corpus used by the Figure 6/7 style measurements: CHOLSKY
/// plus tiny-suite-style kernels and the paper examples.
const std::vector<Kernel> &corpus();

} // namespace kernels
} // namespace omega

#endif // OMEGA_KERNELS_KERNELS_H
