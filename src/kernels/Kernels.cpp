//===- kernels/Kernels.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include <cassert>

using namespace omega;
using namespace omega::kernels;

const char *kernels::cholsky() {
  // Figure 2 of the paper: the NAS CHOLSKY kernel after the authors'
  // forward substitution of MAX(-M,-J) and normalization of the
  // negative-step K loop. SQRT/ABS/division do not affect dependences and
  // are dropped; A(L,JJ,J)**2 reads A(L,JJ,J) once more via a product.
  return R"(
symbolic N, M, NMAT, NRHS, EPS;

# Cholesky decomposition
for J := 0 to N do
  # off-diagonal elements
  for I := max(-M, -J) to -1 do
    for JJ := max(-M, -J) - I to -1 do
      for L := 0 to NMAT do
        A(L,I,J) := A(L,I,J) - A(L,JJ,I+J) * A(L,I+JJ,J);   # paper stmt 3
      endfor
    endfor
    for L := 0 to NMAT do
      A(L,I,J) := A(L,I,J) * A(L,0,I+J);                    # paper stmt 2
    endfor
  endfor
  # store inverse of diagonal elements
  for L := 0 to NMAT do
    EPSS(L) := EPS * A(L,0,J);                              # paper stmt 4
  endfor
  for JJ := max(-M, -J) to -1 do
    for L := 0 to NMAT do
      A(L,0,J) := A(L,0,J) - A(L,JJ,J) * A(L,JJ,J);         # paper stmt 5
    endfor
  endfor
  for L := 0 to NMAT do
    A(L,0,J) := EPSS(L) + A(L,0,J);                         # paper stmt 1
  endfor
endfor

# solution
for I := 0 to NRHS do
  for K := 0 to N do
    for L := 0 to NMAT do
      B(I,L,K) := B(I,L,K) * A(L,0,K);                      # paper stmt 8
    endfor
    for JJ := 1 to min(M, N-K) do
      for L := 0 to NMAT do
        B(I,L,K+JJ) := B(I,L,K+JJ) - A(L,-JJ,K+JJ) * B(I,L,K); # paper stmt 7
      endfor
    endfor
  endfor
  for K := 0 to N do
    for L := 0 to NMAT do
      B(I,L,N-K) := B(I,L,N-K) * A(L,0,N-K);                # paper stmt 9
    endfor
    for JJ := 1 to min(M, N-K) do
      for L := 0 to NMAT do
        B(I,L,N-K-JJ) := B(I,L,N-K-JJ) - A(L,-JJ,N-K) * B(I,L,N-K); # paper stmt 6
      endfor
    endfor
  endfor
endfor
)";
}

unsigned kernels::cholskyPaperLabel(unsigned StmtNumber) {
  // Program order -> FORTRAN DO-label used in Figures 3 and 4.
  static const unsigned Map[] = {0, 3, 2, 4, 5, 1, 8, 7, 9, 6};
  assert(StmtNumber >= 1 && StmtNumber <= 9 && "CHOLSKY has 9 statements");
  return Map[StmtNumber];
}

const char *kernels::example1() {
  return R"(
symbolic n;
a(n) := 0;
for L1 := n to n+10 do
  a(L1) := 0;
endfor
for L1 := n to n+20 do
  x(L1) := a(L1);
endfor
)";
}

const char *kernels::example2() {
  return R"(
symbolic n, m;
a(m) := 0;
for L1 := 1 to 100 do
  a(L1) := 0;
  for L2 := 1 to n do
    a(L2) := 0;
    a(L2-1) := 0;
  endfor
  for L2 := 2 to n-1 do
    x(L2) := a(L2);
  endfor
endfor
)";
}

const char *kernels::example3() {
  return R"(
symbolic n, m;
for L1 := 1 to n do
  for L2 := 2 to m do
    a(L2) := a(L2-1);
  endfor
endfor
)";
}

const char *kernels::example4() {
  return R"(
symbolic n, m;
for L1 := 1 to n do
  for L2 := n+2-L1 to m do
    a(L2) := a(L2-1);
  endfor
endfor
)";
}

const char *kernels::example5() {
  return R"(
symbolic n, m;
for L1 := 1 to n do
  for L2 := L1 to m do
    a(L2) := a(L2-1);
  endfor
endfor
)";
}

const char *kernels::example6() {
  return R"(
symbolic n, m;
for L1 := 1 to n do
  for L2 := 2 to m do
    a(L1-L2) := a(L1-L2);
  endfor
endfor
)";
}

const char *kernels::example7() {
  return R"(
symbolic n, m, x, y;
for L1 := x to n do
  for L2 := 1 to m do
    A(L1,L2) := A(L1-x,y) + C(L1,L2);
  endfor
endfor
)";
}

const char *kernels::example8() {
  return R"(
symbolic n;
for L1 := 1 to n do
  A(Q(L1)) := A(Q(L1+1)-1) + C(L1);
endfor
)";
}

const char *kernels::exampleIndexBounds() {
  // Example 9: array values appear in loop bounds.
  return R"(
symbolic maxB;
for i := 1 to maxB do
  for j := B(i) to B(i+1)-1 do
    A(i,j) := 0;
  endfor
endfor
)";
}

const char *kernels::example10() {
  return R"(
symbolic n;
for i := 1 to n do
  for j := 1 to n do
    A(i*j) := 0;
  endfor
endfor
)";
}

const char *kernels::example11() {
  // From program s141 of [LCD91]: k accumulates j, a scalar recurrence
  // feeding a subscript.
  return R"(
symbolic n;
for i := 1 to n do
  for j := i to n do
    a(k) := a(k) + bb(i,j);
    k := k + j;
  endfor
endfor
)";
}

namespace {

const char *luDecomposition() {
  return R"(
symbolic n;
for k := 1 to n do
  for i := k+1 to n do
    a(i,k) := a(i,k) + a(k,k);
  endfor
  for i := k+1 to n do
    for j := k+1 to n do
      a(i,j) := a(i,j) - a(i,k) * a(k,j);
    endfor
  endfor
endfor
)";
}

const char *wavefront() {
  return R"(
symbolic n, m;
for i := 2 to n do
  for j := 2 to m do
    a(i,j) := a(i-1,j) + a(i,j-1);
  endfor
endfor
)";
}

const char *skewedWavefront() {
  return R"(
symbolic n;
for i := 2 to n do
  for j := i to n do
    a(i,j) := a(i-1,j-1) + a(i-1,j);
  endfor
endfor
)";
}

const char *choleskySmall() {
  // A dense Cholesky in the style of the tiny distribution.
  return R"(
symbolic n;
for k := 1 to n do
  a(k,k) := a(k,k);
  for i := k+1 to n do
    a(i,k) := a(i,k) + a(k,k);
  endfor
  for j := k+1 to n do
    for i := j to n do
      a(i,j) := a(i,j) - a(i,k) * a(j,k);
    endfor
  endfor
endfor
)";
}

const char *privatizable() {
  // t is privatizable: every read is covered by the write in the same
  // iteration. A classic motivating case for kill analysis.
  return R"(
symbolic n;
for i := 1 to n do
  t(0) := a(i);
  b(i) := t(0) + t(0);
endfor
)";
}

const char *inPlaceStencil() {
  return R"(
symbolic n;
for t := 1 to 100 do
  for i := 2 to n-1 do
    a(i) := a(i-1) + a(i+1);
  endfor
endfor
)";
}

const char *reductionChain() {
  return R"(
symbolic n;
s(0) := 0;
for i := 1 to n do
  s(0) := s(0) + a(i);
endfor
x(1) := s(0);
)";
}

const char *doubleBuffer() {
  return R"(
symbolic n;
for t := 1 to 50 do
  for i := 1 to n do
    b(i) := a(i);
  endfor
  for i := 1 to n do
    a(i) := b(i) + 1;
  endfor
endfor
)";
}

const char *trianglesAndStrides() {
  return R"(
symbolic n;
for i := 1 to n step 2 do
  a(i) := a(i-2);
endfor
for i := 1 to n do
  for j := 1 to i do
    c(i) := c(i) + a(j);
  endfor
endfor
)";
}

const char *matmul() {
  return R"(
symbolic n, m, p;
for i := 1 to n do
  for j := 1 to m do
    c(i,j) := 0;
    for k := 1 to p do
      c(i,j) := c(i,j) + a(i,k) * b(k,j);
    endfor
  endfor
endfor
)";
}

const char *transposeCopy() {
  return R"(
symbolic n;
for i := 1 to n do
  for j := 1 to n do
    b(j,i) := a(i,j);
  endfor
endfor
for i := 1 to n do
  for j := 1 to n do
    a(i,j) := b(i,j);
  endfor
endfor
)";
}

const char *gaussSeidel() {
  return R"(
symbolic n, m;
for t := 1 to 10 do
  for i := 2 to n-1 do
    for j := 2 to m-1 do
      u(i,j) := u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1);
    endfor
  endfor
endfor
)";
}

const char *jacobiTwoArray() {
  return R"(
symbolic n;
for t := 1 to 10 do
  for i := 2 to n-1 do
    v(i) := u(i-1) + u(i+1);
  endfor
  for i := 2 to n-1 do
    u(i) := v(i);
  endfor
endfor
)";
}

const char *prefixSums() {
  return R"(
symbolic n;
s(0) := 0;
for i := 1 to n do
  s(i) := s(i-1) + a(i);
endfor
for i := 1 to n do
  b(i) := s(i) - s(i-1);
endfor
)";
}

const char *bandedSolve() {
  return R"(
symbolic n, w;
for i := 2 to n do
  for j := max(1, i-w) to i-1 do
    x(i) := x(i) - l(i,j) * x(j);
  endfor
endfor
)";
}

const char *convolution() {
  return R"(
symbolic n, k;
for i := k+1 to n-k do
  out(i) := 0;
  for j := 0-k to k do
    out(i) := out(i) + in(i+j) * w(j+k);
  endfor
endfor
)";
}

const char *oddEvenPhases() {
  return R"(
symbolic n;
for t := 1 to 8 do
  for i := 1 to n step 2 do
    a(i) := a(i) + a(i+1);
  endfor
  for i := 2 to n step 2 do
    a(i) := a(i) + a(i+1);
  endfor
endfor
)";
}

const char *diagonalSweep() {
  return R"(
symbolic n;
for d := 2 to 2*n do
  for i := max(1, d-n) to min(n, d-1) do
    a(i, d-i) := a(i-1, d-i) + a(i, d-i-1);
  endfor
endfor
)";
}

} // namespace

const std::vector<Kernel> &kernels::corpus() {
  static const std::vector<Kernel> Corpus = {
      {"cholsky", cholsky()},
      {"example1", example1()},
      {"example2", example2()},
      {"example3", example3()},
      {"example4", example4()},
      {"example5", example5()},
      {"example6", example6()},
      {"example7", example7()},
      {"example8", example8()},
      {"example9", exampleIndexBounds()},
      {"example10", example10()},
      {"example11", example11()},
      {"lu", luDecomposition()},
      {"wavefront", wavefront()},
      {"skewed_wavefront", skewedWavefront()},
      {"cholesky_dense", choleskySmall()},
      {"privatizable", privatizable()},
      {"inplace_stencil", inPlaceStencil()},
      {"reduction_chain", reductionChain()},
      {"double_buffer", doubleBuffer()},
      {"triangles_strides", trianglesAndStrides()},
      {"matmul", matmul()},
      {"transpose_copy", transposeCopy()},
      {"gauss_seidel", gaussSeidel()},
      {"jacobi_two_array", jacobiTwoArray()},
      {"prefix_sums", prefixSums()},
      {"banded_solve", bandedSolve()},
      {"convolution", convolution()},
      {"odd_even_phases", oddEvenPhases()},
      {"diagonal_sweep", diagonalSweep()},
  };
  return Corpus;
}
