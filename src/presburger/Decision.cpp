//===- presburger/Decision.cpp --------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "presburger/Decision.h"

#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <map>

using namespace omega;
using namespace omega::pres;

namespace {

using Pieces = std::vector<Problem>;

/// Conjoins two problems that both extend the context layout. B's
/// existential columns -- extra wildcards and context variables that a
/// projection turned into strides (unprotected) -- are remapped onto fresh
/// wildcards of the result, so existentials from different subformulas
/// never conflate even when they reused the same bound variable.
Problem combinePieces(const Problem &A, const Problem &B, unsigned CtxVars) {
  Problem Result = A;
  std::map<VarId, VarId> Remap;
  for (const Constraint &Row : B.constraints()) {
    Result.addRow(Row.getKind(), Row.isRed());
    Result.constraints().back().setConstant(Row.getConstant());
    for (VarId V = 0, E = Row.getNumVars(); V != E; ++V) {
      int64_t C = Row.getCoeff(V);
      if (C == 0)
        continue;
      VarId Target = V;
      if (static_cast<unsigned>(V) >= CtxVars || !B.isProtected(V)) {
        auto [It, Inserted] = Remap.try_emplace(V, -1);
        if (Inserted)
          It->second = Result.addWildcard();
        Target = It->second;
      }
      // addWildcard resizes every row in place; index the row afresh.
      Result.constraints().back().setCoeff(Target, C);
    }
  }
  return Result;
}

/// Drops pieces with no integer solutions.
void pruneEmpty(Pieces &Ps) {
  Pieces Out;
  for (Problem &P : Ps)
    if (isSatisfiable(P))
      Out.push_back(std::move(P));
  Ps = std::move(Out);
}

/// Classification of one piece's rows for negation.
struct NegatableRows {
  std::vector<Constraint> Plain;   // wildcard-free rows
  std::vector<Constraint> Strides; // simple stride equalities
  bool Supported = true;
};

NegatableRows classifyForNegation(const Problem &P, unsigned CtxVars) {
  (void)CtxVars;
  NegatableRows R;
  // Existential columns are the unprotected ones: extra wildcards plus
  // context variables that a projection turned into strides.
  auto isExistential = [&P](VarId V) { return !P.isProtected(V); };

  // Count existential-variable occurrences across rows.
  std::vector<unsigned> RowsUsing(P.getNumVars(), 0);
  for (const Constraint &Row : P.constraints())
    for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
      if (Row.involves(V) && isExistential(V))
        ++RowsUsing[V];

  for (const Constraint &Row : P.constraints()) {
    std::vector<VarId> Wildcards;
    for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
      if (Row.involves(V) && isExistential(V))
        Wildcards.push_back(V);
    if (Wildcards.empty()) {
      R.Plain.push_back(Row);
      continue;
    }
    // Simple stride: an equality with exactly one wildcard that appears in
    // no other row.
    if (Row.isEquality() && Wildcards.size() == 1 &&
        RowsUsing[Wildcards.front()] == 1) {
      if (absVal(Row.getCoeff(Wildcards.front())) == 1)
        continue; // exists w: f + w == 0 is vacuously true; no constraint
      R.Strides.push_back(Row);
      continue;
    }
    R.Supported = false;
    return R;
  }
  return R;
}

/// The negation of a single piece as a union of pieces over the context
/// layout, or nullopt when unsupported.
std::optional<Pieces> negateOnePiece(const Problem &P,
                                     const FormulaContext &Ctx) {
  unsigned CtxVars = Ctx.getNumVars();
  NegatableRows Rows = classifyForNegation(P, CtxVars);
  if (!Rows.Supported)
    return std::nullopt;

  Pieces Out;
  // Copies the coefficients of the protected (free) variables; existential
  // columns are handled by the stride machinery.
  auto copyCtxCoeffs = [&](const Constraint &From, Constraint &To) {
    for (VarId V = 0; V != static_cast<VarId>(CtxVars); ++V)
      if (P.isProtected(V))
        To.setCoeff(V, From.getCoeff(V));
    To.setConstant(From.getConstant());
  };

  for (const Constraint &Row : Rows.Plain) {
    std::vector<Constraint> Branches;
    appendNegationBranches(Row, Branches);
    for (const Constraint &Branch : Branches) {
      Problem Piece = Ctx.makeProblem();
      Constraint &New = Piece.addRow(Branch.getKind());
      copyCtxCoeffs(Branch, New);
      Out.push_back(std::move(Piece));
    }
  }

  for (const Constraint &Row : Rows.Strides) {
    // Row: f(ctx) + a*w + c == 0 represents f + c == 0 (mod |a|). Its
    // negation is the union over non-zero residues r of
    // exists w': f + c - r + a*w' == 0.
    VarId W = -1;
    for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
      if (Row.involves(V) && !P.isProtected(V)) {
        W = V;
        break;
      }
    int64_t A = absVal(Row.getCoeff(W));
    for (int64_t Residue = 1; Residue < A; ++Residue) {
      Problem Piece = Ctx.makeProblem();
      VarId NewW = Piece.addWildcard();
      Constraint &New = Piece.addRow(ConstraintKind::EQ);
      copyCtxCoeffs(Row, New);
      New.addToConstant(-Residue);
      New.setCoeff(NewW, Row.getCoeff(W));
      Out.push_back(std::move(Piece));
    }
  }
  return Out;
}

/// not(P1 or ... or Pk) as a union of conjunctions: distribute the
/// conjunction of the piecewise negations, pruning empty combinations.
std::optional<Pieces> negatePieces(const Pieces &Ps,
                                   const FormulaContext &Ctx) {
  Pieces Acc;
  Acc.push_back(Ctx.makeProblem()); // neutral element: True
  for (const Problem &P : Ps) {
    std::optional<Pieces> Neg = negateOnePiece(P, Ctx);
    if (!Neg)
      return std::nullopt;
    Pieces Next;
    for (const Problem &A : Acc)
      for (const Problem &B : *Neg) {
        Problem C = combinePieces(A, B, Ctx.getNumVars());
        if (isSatisfiable(C))
          Next.push_back(std::move(C));
      }
    Acc = std::move(Next);
    if (Acc.empty())
      break;
  }
  return Acc;
}

std::optional<Pieces> toDNFImpl(const Formula &F, const FormulaContext &Ctx) {
  switch (F.getKind()) {
  case Formula::Kind::True:
    return Pieces{Ctx.makeProblem()};
  case Formula::Kind::False:
    return Pieces{};
  case Formula::Kind::AtomK: {
    Problem P = Ctx.makeProblem();
    P.addConstraint(F.getAtom().toConstraint(P));
    return Pieces{std::move(P)};
  }
  case Formula::Kind::And: {
    Pieces Acc;
    Acc.push_back(Ctx.makeProblem());
    for (const Formula &Child : F.children()) {
      std::optional<Pieces> Sub = toDNFImpl(Child, Ctx);
      if (!Sub)
        return std::nullopt;
      Pieces Next;
      for (const Problem &A : Acc)
        for (const Problem &B : *Sub) {
          Problem C = combinePieces(A, B, Ctx.getNumVars());
          if (isSatisfiable(C))
            Next.push_back(std::move(C));
        }
      Acc = std::move(Next);
      if (Acc.empty())
        break;
    }
    return Acc;
  }
  case Formula::Kind::Or: {
    Pieces Acc;
    for (const Formula &Child : F.children()) {
      std::optional<Pieces> Sub = toDNFImpl(Child, Ctx);
      if (!Sub)
        return std::nullopt;
      for (Problem &P : *Sub)
        Acc.push_back(std::move(P));
    }
    return Acc;
  }
  case Formula::Kind::Not: {
    std::optional<Pieces> Sub = toDNFImpl(F.children().front(), Ctx);
    if (!Sub)
      return std::nullopt;
    return negatePieces(*Sub, Ctx);
  }
  case Formula::Kind::Exists: {
    std::optional<Pieces> Sub = toDNFImpl(F.children().front(), Ctx);
    if (!Sub)
      return std::nullopt;
    Pieces Out;
    for (const Problem &P : *Sub) {
      std::vector<bool> Keep(P.getNumVars(), true);
      for (VarId V : F.boundVars()) {
        assert(static_cast<unsigned>(V) < Ctx.getNumVars() &&
               "bound variable must be a context variable");
        Keep[V] = false;
      }
      ProjectionResult R = projectOntoMask(P, Keep);
      for (Problem &Piece : R.Pieces)
        Out.push_back(std::move(Piece));
    }
    pruneEmpty(Out);
    return Out;
  }
  case Formula::Kind::Forall: {
    // forall x: B  ==  not exists x: not B.
    Formula Inner = Formula::exists(
        F.boundVars(),
        Formula::negate(F.children().front()).toNNF());
    std::optional<Pieces> Sub = toDNFImpl(Inner, Ctx);
    if (!Sub)
      return std::nullopt;
    return negatePieces(*Sub, Ctx);
  }
  }
  assert(false && "unknown formula kind");
  return std::nullopt;
}

} // namespace

std::optional<std::vector<Problem>> pres::toDNF(const Formula &F,
                                                const FormulaContext &Ctx) {
  return toDNFImpl(F.toNNF(), Ctx);
}

std::optional<bool> pres::isSatisfiable(const Formula &F,
                                        const FormulaContext &Ctx) {
  std::optional<Pieces> Ps = toDNF(F, Ctx);
  if (!Ps)
    return std::nullopt;
  for (const Problem &P : *Ps)
    if (omega::isSatisfiable(P))
      return true;
  return false;
}

std::optional<bool> pres::isValid(const Formula &F, const FormulaContext &Ctx) {
  std::optional<bool> Sat = isSatisfiable(Formula::negate(F).toNNF(), Ctx);
  if (!Sat)
    return std::nullopt;
  return !*Sat;
}

std::optional<bool> pres::isEquivalent(const Formula &F, const Formula &G,
                                       const FormulaContext &Ctx) {
  // F == G  <=>  (F => G) && (G => F) valid.
  Formula Both = Formula::conj(
      {Formula::implies(F, G), Formula::implies(G, F)});
  return isValid(Both, Ctx);
}

std::optional<std::optional<std::vector<int64_t>>>
pres::findAssignment(const Formula &F, const FormulaContext &Ctx) {
  std::optional<Pieces> Ps = toDNF(F, Ctx);
  if (!Ps)
    return std::nullopt;
  for (const Problem &P : *Ps) {
    std::optional<std::vector<int64_t>> Sol = findSolution(P);
    if (!Sol)
      continue;
    Sol->resize(Ctx.getNumVars(), 0);
    return std::optional<std::vector<int64_t>>(std::move(*Sol));
  }
  return std::optional<std::vector<int64_t>>(std::nullopt);
}
