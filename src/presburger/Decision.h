//===- presburger/Decision.h - Deciding the Omega-test subclass ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides satisfiability and validity of Presburger formulas in the
/// subclass the extended Omega test handles (Section 3.2). The procedure
/// eliminates existentials by exact projection (which can leave residual
/// stride wildcards) and negates unions piecewise; pieces whose stride
/// structure is not "simple" (each wildcard confined to one equality)
/// cannot be negated, in which case the answer is "outside the subclass"
/// (std::nullopt), mirroring the paper's informal subclass boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_DECISION_H
#define OMEGA_PRESBURGER_DECISION_H

#include "presburger/Formula.h"

#include <optional>
#include <vector>

namespace omega {
namespace pres {

/// Exact disjunction of conjunctions over the context layout (plus
/// wildcards) equivalent to the formula. nullopt when the formula falls
/// outside the supported subclass.
std::optional<std::vector<Problem>> toDNF(const Formula &F,
                                          const FormulaContext &Ctx);

/// Is there an integer assignment of the free variables satisfying \p F?
std::optional<bool> isSatisfiable(const Formula &F, const FormulaContext &Ctx);

/// Does \p F hold for every integer assignment of its free variables?
std::optional<bool> isValid(const Formula &F, const FormulaContext &Ctx);

/// Are the two formulas equivalent (equal truth value at every integer
/// assignment of the context variables)?
std::optional<bool> isEquivalent(const Formula &F, const Formula &G,
                                 const FormulaContext &Ctx);

/// A satisfying assignment of the context variables (values indexed by
/// VarId), or an empty optional when unsatisfiable; the outer optional is
/// empty when the formula is outside the supported subclass.
std::optional<std::optional<std::vector<int64_t>>>
findAssignment(const Formula &F, const FormulaContext &Ctx);

} // namespace pres
} // namespace omega

#endif // OMEGA_PRESBURGER_DECISION_H
