//===- presburger/Formula.h - Presburger formula AST ----------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Presburger formulas (Section 3.2 of the paper): formulas built from
/// integer affine atoms with and/or/not and exists/forall. The decision
/// procedure (Decision.h) handles the subclass the extended Omega test can
/// answer: quantifiers are eliminated by exact projection, and negation is
/// supported whenever the projected pieces have simple stride structure.
///
/// Variables live in a FormulaContext, which is just a Problem variable
/// layout; every atom and every piece produced by the decision procedure
/// extends that layout.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_PRESBURGER_FORMULA_H
#define OMEGA_PRESBURGER_FORMULA_H

#include "omega/Problem.h"

#include <memory>
#include <string>
#include <vector>

namespace omega {
namespace pres {

/// Owns the variable layout shared by a formula's atoms.
class FormulaContext {
public:
  VarId addVar(std::string Name) { return Layout.addVar(std::move(Name)); }
  unsigned getNumVars() const { return Layout.getNumVars(); }
  const std::string &getVarName(VarId V) const { return Layout.getVarName(V); }

  /// An empty problem with this context's variable layout.
  Problem makeProblem() const { return Layout.cloneLayout(); }

private:
  Problem Layout;
};

/// One affine atom: sum Terms + Constant (== 0 | >= 0).
struct Atom {
  std::vector<Term> Terms;
  int64_t Constant = 0;
  ConstraintKind Kind = ConstraintKind::GEQ;

  /// Materializes the atom as a row of \p P (which must extend the
  /// formula's context layout).
  Constraint toConstraint(const Problem &P) const;
};

/// An immutable formula tree with value semantics.
class Formula {
public:
  enum class Kind : uint8_t {
    True,
    False,
    AtomK,
    And,
    Or,
    Not,
    Exists,
    Forall,
  };

  static Formula trueF() { return Formula(Kind::True); }
  static Formula falseF() { return Formula(Kind::False); }

  /// sum Terms + C >= 0.
  static Formula geq(std::vector<Term> Terms, int64_t C);
  /// sum Terms + C == 0.
  static Formula eq(std::vector<Term> Terms, int64_t C);
  /// sum Terms + C <= 0 (normalized to a GEQ).
  static Formula leq(std::vector<Term> Terms, int64_t C);
  /// sum Terms + C > 0 (normalized to a GEQ).
  static Formula gt(std::vector<Term> Terms, int64_t C);
  /// sum Terms + C < 0 (normalized to a GEQ).
  static Formula lt(std::vector<Term> Terms, int64_t C);
  /// sum Terms + C != 0 (an Or of two strict sides).
  static Formula neq(std::vector<Term> Terms, int64_t C);

  static Formula conj(std::vector<Formula> Fs);
  static Formula disj(std::vector<Formula> Fs);
  static Formula negate(Formula F);
  static Formula implies(Formula P, Formula Q);
  static Formula exists(std::vector<VarId> Vars, Formula Body);
  static Formula forall(std::vector<VarId> Vars, Formula Body);

  Kind getKind() const { return K; }
  const Atom &getAtom() const {
    assert(K == Kind::AtomK);
    return A;
  }
  const std::vector<Formula> &children() const { return Children; }
  const std::vector<VarId> &boundVars() const { return Bound; }

  /// Negation-normal form: Not appears only directly above atoms, and is
  /// then folded into the atom itself, so the result contains no Not nodes
  /// at all.
  Formula toNNF() const;

  std::string toString(const FormulaContext &Ctx) const;

private:
  explicit Formula(Kind K) : K(K) {}

  Kind K;
  Atom A;                        // valid iff K == AtomK
  std::vector<Formula> Children; // And/Or (n), Not (1), Exists/Forall (1)
  std::vector<VarId> Bound;      // Exists/Forall

  Formula nnfImpl(bool Negated) const;
};

} // namespace pres
} // namespace omega

#endif // OMEGA_PRESBURGER_FORMULA_H
