//===- presburger/Formula.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "presburger/Formula.h"

#include <algorithm>

using namespace omega;
using namespace omega::pres;

Constraint pres::Atom::toConstraint(const Problem &P) const {
  Constraint Row(Kind, P.getNumVars());
  for (const Term &T : Terms)
    Row.addToCoeff(T.first, T.second);
  Row.setConstant(Constant);
  return Row;
}

Formula Formula::geq(std::vector<Term> Terms, int64_t C) {
  Formula F(Kind::AtomK);
  F.A.Terms = std::move(Terms);
  F.A.Constant = C;
  F.A.Kind = ConstraintKind::GEQ;
  return F;
}

Formula Formula::eq(std::vector<Term> Terms, int64_t C) {
  Formula F(Kind::AtomK);
  F.A.Terms = std::move(Terms);
  F.A.Constant = C;
  F.A.Kind = ConstraintKind::EQ;
  return F;
}

Formula Formula::leq(std::vector<Term> Terms, int64_t C) {
  // f <= 0  <=>  -f >= 0.
  for (Term &T : Terms)
    T.second = checkedMul(T.second, -1);
  return geq(std::move(Terms), checkedMul(C, -1));
}

Formula Formula::gt(std::vector<Term> Terms, int64_t C) {
  // f > 0  <=>  f - 1 >= 0.
  return geq(std::move(Terms), checkedSub(C, 1));
}

Formula Formula::lt(std::vector<Term> Terms, int64_t C) {
  // f < 0  <=>  -f - 1 >= 0.
  for (Term &T : Terms)
    T.second = checkedMul(T.second, -1);
  return geq(std::move(Terms), checkedSub(checkedMul(C, -1), 1));
}

Formula Formula::neq(std::vector<Term> Terms, int64_t C) {
  Formula Neg = lt(Terms, C);
  Formula Pos = gt(std::move(Terms), C);
  return disj({std::move(Pos), std::move(Neg)});
}

Formula Formula::conj(std::vector<Formula> Fs) {
  if (Fs.empty())
    return trueF();
  if (Fs.size() == 1)
    return std::move(Fs.front());
  Formula F(Kind::And);
  F.Children = std::move(Fs);
  return F;
}

Formula Formula::disj(std::vector<Formula> Fs) {
  if (Fs.empty())
    return falseF();
  if (Fs.size() == 1)
    return std::move(Fs.front());
  Formula F(Kind::Or);
  F.Children = std::move(Fs);
  return F;
}

Formula Formula::negate(Formula Inner) {
  Formula F(Kind::Not);
  F.Children.push_back(std::move(Inner));
  return F;
}

Formula Formula::implies(Formula P, Formula Q) {
  return disj({negate(std::move(P)), std::move(Q)});
}

Formula Formula::exists(std::vector<VarId> Vars, Formula Body) {
  if (Vars.empty())
    return Body;
  Formula F(Kind::Exists);
  F.Bound = std::move(Vars);
  F.Children.push_back(std::move(Body));
  return F;
}

Formula Formula::forall(std::vector<VarId> Vars, Formula Body) {
  if (Vars.empty())
    return Body;
  Formula F(Kind::Forall);
  F.Bound = std::move(Vars);
  F.Children.push_back(std::move(Body));
  return F;
}

Formula Formula::toNNF() const { return nnfImpl(/*Negated=*/false); }

Formula Formula::nnfImpl(bool Negated) const {
  switch (K) {
  case Kind::True:
    return Negated ? falseF() : trueF();
  case Kind::False:
    return Negated ? trueF() : falseF();
  case Kind::AtomK: {
    if (!Negated)
      return *this;
    if (A.Kind == ConstraintKind::GEQ) {
      // not (f >= 0)  <=>  -f - 1 >= 0.
      std::vector<Term> Terms = A.Terms;
      for (Term &T : Terms)
        T.second = checkedMul(T.second, -1);
      return geq(std::move(Terms), checkedSub(checkedMul(A.Constant, -1), 1));
    }
    // not (f == 0)  <=>  (f - 1 >= 0) or (-f - 1 >= 0).
    std::vector<Term> Pos = A.Terms;
    std::vector<Term> Neg = A.Terms;
    for (Term &T : Neg)
      T.second = checkedMul(T.second, -1);
    return disj({geq(std::move(Pos), checkedSub(A.Constant, 1)),
                 geq(std::move(Neg),
                     checkedSub(checkedMul(A.Constant, -1), 1))});
  }
  case Kind::And:
  case Kind::Or: {
    std::vector<Formula> Kids;
    Kids.reserve(Children.size());
    for (const Formula &C : Children)
      Kids.push_back(C.nnfImpl(Negated));
    bool IsAnd = (K == Kind::And) != Negated;
    return IsAnd ? conj(std::move(Kids)) : disj(std::move(Kids));
  }
  case Kind::Not:
    return Children.front().nnfImpl(!Negated);
  case Kind::Exists:
  case Kind::Forall: {
    Formula Body = Children.front().nnfImpl(Negated);
    bool IsExists = (K == Kind::Exists) != Negated;
    return IsExists ? exists(Bound, std::move(Body))
                    : forall(Bound, std::move(Body));
  }
  }
  assert(false && "unknown formula kind");
  return falseF();
}

std::string Formula::toString(const FormulaContext &Ctx) const {
  auto renderAtom = [&]() {
    std::string LHS;
    for (const Term &T : A.Terms) {
      if (T.second == 0)
        continue;
      if (LHS.empty()) {
        if (T.second == -1)
          LHS += "-";
        else if (T.second != 1)
          LHS += std::to_string(T.second) + "*";
      } else {
        LHS += T.second < 0 ? " - " : " + ";
        if (T.second != 1 && T.second != -1)
          LHS += std::to_string(absVal(T.second)) + "*";
      }
      LHS += Ctx.getVarName(T.first);
    }
    if (LHS.empty())
      LHS = "0";
    return LHS + (A.Kind == ConstraintKind::EQ ? " = " : " >= ") +
           std::to_string(-A.Constant);
  };

  switch (K) {
  case Kind::True:
    return "TRUE";
  case Kind::False:
    return "FALSE";
  case Kind::AtomK:
    return renderAtom();
  case Kind::And:
  case Kind::Or: {
    std::string Sep = K == Kind::And ? " && " : " || ";
    std::string Out = "(";
    for (unsigned I = 0; I != Children.size(); ++I) {
      if (I)
        Out += Sep;
      Out += Children[I].toString(Ctx);
    }
    return Out + ")";
  }
  case Kind::Not:
    return "!" + Children.front().toString(Ctx);
  case Kind::Exists:
  case Kind::Forall: {
    std::string Out = K == Kind::Exists ? "exists " : "forall ";
    for (unsigned I = 0; I != Bound.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ctx.getVarName(Bound[I]);
    }
    return Out + ": " + Children.front().toString(Ctx);
  }
  }
  assert(false && "unknown formula kind");
  return "";
}
