//===- analysis/Driver.h - Whole-program Section 4 pipeline --------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver runs the paper's Section 4 pipeline over a whole program:
///
///  1. compute all output dependences (they feed the quick tests),
///  2. for each array read, compute the flow dependences into it,
///     attempting refinement and then coverage on each,
///  3. use covering dependences to kill dependences from writes that
///     completely precede the cover,
///  4. check the remaining flow dependences pairwise for killing.
///
/// Anti dependences are computed unrefined (as in the paper's
/// implementation, which focused on flow dependences). Per-pair and
/// per-kill timing records feed the Figure 6/7 benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_DRIVER_H
#define OMEGA_ANALYSIS_DRIVER_H

#include "deps/DependenceAnalysis.h"

namespace omega {
namespace analysis {

struct DriverOptions {
  bool QuickTests = true; ///< Section 4.5 screens
  bool Refine = true;
  bool Cover = true;
  bool Kill = true;
  /// Also run the Section 4.3 terminating analysis and kill dependences
  /// out of terminated accesses (an extension the paper describes but its
  /// implementation did not enable).
  bool Terminate = false;
};

/// Per (write, read) array-pair record for the Figure 6 cost classes.
struct PairRecord {
  const ir::Access *Write = nullptr;
  const ir::Access *Read = nullptr;
  bool HasFlow = false;
  bool UsedGeneralTest = false; ///< refinement/coverage consulted Omega
  bool SplitVectors = false;    ///< dependence split into several vectors
  double StandardSecs = 0;      ///< plain dependence computation
  double ExtendedSecs = 0;      ///< plus refinement and coverage
};

/// Per kill-candidate record (Figure 6 right).
struct KillRecord {
  const ir::Access *From = nullptr;
  const ir::Access *Killer = nullptr;
  const ir::Access *To = nullptr;
  bool UsedOmega = false; ///< general test ran (vs. quick-test resolution)
  bool Killed = false;
  double Secs = 0;
};

struct AnalysisResult {
  std::vector<deps::Dependence> Flow;
  std::vector<deps::Dependence> Anti;
  std::vector<deps::Dependence> Output;
  std::vector<PairRecord> Pairs;
  std::vector<KillRecord> Kills;

  /// Renders Figure 3/4-style tables: rows "FROM -> TO dir status".
  std::string liveFlowTable() const;
  std::string deadFlowTable() const;
};

/// Legacy serial entry point, implemented in the engine library on top of
/// engine::DependenceEngine (link omega_engine to use it). Runs with one
/// job and no query cache, and merges the run's Omega stats into the
/// calling thread's current context. New code should construct a
/// DependenceEngine and pass an engine::AnalysisRequest instead.
AnalysisResult analyzeProgram(const ir::AnalyzedProgram &AP,
                              const DriverOptions &Opts = DriverOptions());

} // namespace analysis
} // namespace omega

#endif // OMEGA_ANALYSIS_DRIVER_H
