//===- analysis/Refine.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Refine.h"

#include "analysis/Implication.h"
#include "obs/Trace.h"
#include "omega/OmegaContext.h"
#include "omega/Projection.h"
#include "omega/QueryCache.h"
#include "omega/Satisfiability.h"
#include "omega/Snapshot.h"

#include <algorithm>
#include <map>

using namespace omega;
using namespace omega::analysis;
using omega::deps::DepSpace;

namespace {

std::vector<bool> keepAllBut(const Problem &P, const DepSpace &Space,
                             unsigned Inst) {
  std::vector<bool> Keep(P.getNumVars(), true);
  for (unsigned D = 0; D != Space.access(Inst).Loops.size(); ++D)
    Keep[Space.iterVar(Inst, D)] = false;
  return Keep;
}

/// One execution-order case of the unrefined dependence (a restraint
/// vector), with distance variables attached so minima can be extracted.
struct LevelProblem {
  unsigned Level = 0;
  Problem P; ///< the full system; every range query runs against this
  /// Snapshot-reduced form, sat-equivalent to P over the deltas. Used only
  /// for satisfiability decisions (which are complete, hence identical on
  /// equivalent forms); computeVarRange reads bounds off projected pieces
  /// and is form-sensitive, so ranges must come from P to keep
  /// --no-incremental result-identical.
  std::optional<Problem> Reduced;
  std::vector<VarId> Deltas;
  bool Feasible = true;
};

/// Shared state for the refinement passes over one dependence.
class Refiner {
public:
  Refiner(const ir::AnalyzedProgram &AP, const ir::Access &A,
          const ir::Access &B, deps::Dependence &Dep)
      : Space(AP, {&A, &A, &B}), Dep(Dep) {
    Common = Space.numCommonLoops(0, 2);
    for (const deps::DepSplit &Split : Dep.Splits) {
      LevelProblem L;
      L.Level = Split.Level;
      L.P = Space.base();
      Space.addIterationSpace(L.P, 0);
      Space.addIterationSpace(L.P, 2);
      Space.addSubscriptsEqual(L.P, 0, 2);
      Space.addPrecedesAtLevel(L.P, 0, 2, Split.Level);
      L.Deltas = Space.addDistanceVars(L.P, 0, 2);
      reduceToDeltas(L);
      Levels.push_back(std::move(L));
    }
  }

  /// The satisfiability questions the passes ask about a level problem
  /// concern only its distance variables, so the rest of the system can be
  /// eliminated up front. Only exact (snapshot) eliminations are taken,
  /// which preserves satisfiability over the deltas; the pins added later
  /// touch only the (kept) deltas, so the reduced system stays
  /// sat-equivalent. Range extraction deliberately keeps using the full
  /// system (see LevelProblem::Reduced).
  void reduceToDeltas(LevelProblem &L) {
    OmegaContext &Ctx = OmegaContext::current();
    if (!Ctx.IncrementalSnapshots)
      return;
    std::vector<bool> Keep(L.P.getNumVars(), false);
    for (VarId D : L.Deltas)
      Keep[D] = true;
    // Same sharing policy as PairSolver::ensureSnapshot: a snapshot is a
    // deterministic function of (system, keep mask), so adopting one a
    // previous request already built is result-identical to rebuilding.
    std::optional<EliminationSnapshot> Adopted;
    if (Ctx.Cache && Ctx.SnapshotSharing) {
      std::string Key = snapshotCacheKey(L.P, Keep);
      Adopted = Ctx.Cache->lookupSnapshot(Key, &Ctx.Stats);
      if (!Adopted) {
        Adopted.emplace(L.P, Keep);
        Ctx.Cache->storeSnapshot(Key, *Adopted);
      }
    } else {
      Adopted.emplace(L.P, Keep);
    }
    EliminationSnapshot &Snap = *Adopted;
    switch (Snap.state()) {
    case EliminationSnapshot::State::ProvedUnsat:
      L.Feasible = false;
      break;
    case EliminationSnapshot::State::Ready:
      ++Ctx.Stats.SnapshotReuses;
      L.Reduced = Snap.reduced();
      break;
    case EliminationSnapshot::State::Saturated:
      break; // clamped rows are garbage: keep the full system
    }
  }

  unsigned numCommonLoops() const { return Common; }

  /// LHS pieces: exists i with A(i) << B(k) under the given restraints,
  /// projected onto (k, Sym). The per-level pieces depend only on the
  /// level (never on pins), so both passes share one projection per level.
  const std::vector<Problem> *levelLHSPieces(unsigned Idx) {
    auto It = LHSCache.find(Idx);
    if (It != LHSCache.end())
      return It->second.Poisoned ? nullptr : &It->second.Pieces;
    Problem LHS = Space.base();
    Space.addIterationSpace(LHS, 0);
    Space.addIterationSpace(LHS, 2);
    Space.addSubscriptsEqual(LHS, 0, 2);
    Space.addPrecedesAtLevel(LHS, 0, 2, Levels[Idx].Level);
    ProjectionResult R =
        projectOntoMask(LHS, keepAllBut(LHS, Space, 0),
                        ProjectOptions{/*RemoveRedundant=*/false,
                                       /*DropEmptyPieces=*/true});
    CachedPieces &Entry = LHSCache[Idx];
    Entry.Poisoned = R.Poisoned;
    for (Problem &Piece : R.Pieces)
      Entry.Pieces.push_back(std::move(Piece));
    return Entry.Poisoned ? nullptr : &Entry.Pieces;
  }

  std::vector<Problem> buildLHSPieces(const std::vector<unsigned> &Which) {
    std::vector<Problem> Pieces;
    for (unsigned Idx : Which) {
      if (!Levels[Idx].Feasible)
        continue;
      const std::vector<Problem> *LevelPieces = levelLHSPieces(Idx);
      if (!LevelPieces)
        return {}; // conservative: refinement is skipped entirely
      for (const Problem &Piece : *LevelPieces)
        Pieces.push_back(Piece);
    }
    return Pieces;
  }

  /// RHS pieces: exists j in [A] at the fixed distances D from k, with
  /// A(j) << B(k), projected onto (k, Sym). Pass 2 re-fixes the same
  /// distance prefixes pass 1 tried, so results are memoized by D.
  const std::vector<Problem> &buildRHSPieces(const std::vector<int64_t> &D) {
    auto It = RHSCache.find(D);
    if (It != RHSCache.end())
      return It->second;
    std::vector<Problem> Pieces;
    Problem RHS0 = Space.base();
    Space.addIterationSpace(RHS0, 1);
    Space.addSubscriptsEqual(RHS0, 1, 2);
    for (unsigned L = 0; L != D.size(); ++L) {
      // k_L - j_L == D[L].
      Constraint &Row = RHS0.addRow(ConstraintKind::EQ);
      Row.setCoeff(Space.iterVar(2, L), 1);
      Row.setCoeff(Space.iterVar(1, L), -1);
      Row.setConstant(-D[L]);
    }
    for (const Problem &Case : Space.precedesCases(RHS0, 1, 2)) {
      ProjectionResult R =
          projectOntoMask(Case, keepAllBut(Case, Space, 1),
                          ProjectOptions{/*RemoveRedundant=*/false,
                                         /*DropEmptyPieces=*/true});
      if (R.Poisoned) {
        Pieces.clear(); // conservative: the candidate fails verification
        break;
      }
      for (Problem &Piece : R.Pieces)
        Pieces.push_back(std::move(Piece));
    }
    return RHSCache.emplace(D, std::move(Pieces)).first->second;
  }

  /// One refinement pass (the paper's candidate generator): fix distances
  /// outermost-in to the minimum over the restraints in \p MinSet,
  /// verifying each extension against the receivers in \p LHSSet. Pins
  /// accepted distances into the \p MinSet problems. Returns the number
  /// of loops fixed.
  unsigned runPass(const std::vector<unsigned> &LHSSet,
                   const std::vector<unsigned> &MinSet, RefineResult &Out) {
    std::vector<Problem> LHSPieces = buildLHSPieces(LHSSet);
    if (LHSPieces.empty())
      return 0;

    std::vector<int64_t> Fixed;
    std::vector<std::vector<IntRange>> Pinned(Levels.size());
    for (unsigned L = 0; L != Common; ++L) {
      bool HasMin = false;
      int64_t Min = 0;
      for (unsigned Idx : MinSet) {
        LevelProblem &Lvl = Levels[Idx];
        if (!Lvl.Feasible)
          continue;
        IntRange R = computeVarRange(Lvl.P, Lvl.Deltas[L]);
        if (R.Empty) {
          Lvl.Feasible = false;
          continue;
        }
        if (!R.HasMin) {
          HasMin = false;
          break;
        }
        if (!HasMin || R.Min < Min) {
          HasMin = true;
          Min = R.Min;
        }
      }
      if (!HasMin)
        break;

      Fixed.push_back(Min);
      Out.UsedGeneralTest = true;
      const std::vector<Problem> &RHSPieces = buildRHSPieces(Fixed);
      bool OK = true;
      for (const Problem &LHS : LHSPieces)
        if (!checkImplication(LHS, RHSPieces)) {
          OK = false;
          break;
        }
      if (!OK) {
        Fixed.pop_back();
        break;
      }
      for (unsigned Idx : MinSet) {
        LevelProblem &Lvl = Levels[Idx];
        if (!Lvl.Feasible)
          continue;
        Constraint &Pin = Lvl.P.addRow(ConstraintKind::EQ);
        Pin.setCoeff(Lvl.Deltas[L], 1);
        Pin.setConstant(-Min);
        if (Lvl.Reduced) { // pins touch only kept deltas: stays equivalent
          Constraint &RPin = Lvl.Reduced->addRow(ConstraintKind::EQ);
          RPin.setCoeff(Lvl.Deltas[L], 1);
          RPin.setConstant(-Min);
        }
      }
    }
    return Fixed.size();
  }

  /// Rewrites the dependence's splits from the (possibly pinned) level
  /// problems. Returns true if anything changed.
  bool rebuildSplits() {
    std::vector<deps::DepSplit> NewSplits;
    for (LevelProblem &Lvl : Levels) {
      if (!Lvl.Feasible ||
          !isSatisfiable(Lvl.Reduced ? *Lvl.Reduced : Lvl.P)) {
        Lvl.Feasible = false;
        continue;
      }
      deps::DepSplit S;
      S.Level = Lvl.Level;
      for (unsigned L = 0; L != Common; ++L) {
        deps::DirectionElem Elem;
        Elem.Range = computeVarRange(Lvl.P, Lvl.Deltas[L]);
        S.Dir.push_back(Elem);
      }
      S.Refined = true;
      NewSplits.push_back(std::move(S));
    }

    bool Same = NewSplits.size() == Dep.Splits.size();
    for (unsigned I = 0; Same && I != NewSplits.size(); ++I) {
      Same = NewSplits[I].Level == Dep.Splits[I].Level;
      for (unsigned L = 0; Same && L != Common; ++L) {
        const IntRange &X = NewSplits[I].Dir[L].Range;
        const IntRange &Y = Dep.Splits[I].Dir[L].Range;
        Same = X.HasMin == Y.HasMin && X.HasMax == Y.HasMax &&
               (!X.HasMin || X.Min == Y.Min) &&
               (!X.HasMax || X.Max == Y.Max);
      }
    }
    if (Same)
      return false;
    Dep.Splits = std::move(NewSplits);
    return true;
  }

  std::vector<unsigned> allIndices() const {
    std::vector<unsigned> Out;
    for (unsigned I = 0; I != Levels.size(); ++I)
      Out.push_back(I);
    return Out;
  }

  DepSpace Space;
  deps::Dependence &Dep;
  unsigned Common = 0;
  std::vector<LevelProblem> Levels;

  struct CachedPieces {
    std::vector<Problem> Pieces;
    bool Poisoned = false;
  };
  std::map<unsigned, CachedPieces> LHSCache;
  std::map<std::vector<int64_t>, std::vector<Problem>> RHSCache;
};

} // namespace

RefineResult analysis::refineDependence(const ir::AnalyzedProgram &AP,
                                        const ir::Access &A,
                                        const ir::Access &B,
                                        deps::Dependence &Dep) {
  RefineResult Result;
  assert(A.IsWrite && "refinement applies to dependences from a write");
  obs::ScopedSpan Span(OmegaContext::current().Trace, obs::SpanKind::Refine);
  if (Dep.Splits.empty())
    return Result;
  // Refinement claims a definite more-recent source, which needs
  // must-alias subscript reasoning; rank-mismatched references only may
  // alias.
  if (A.Subscripts.size() != B.Subscripts.size())
    return Result;

  Refiner R(AP, A, B, Dep);
  if (R.numCommonLoops() == 0)
    return Result; // nothing to refine without common loops

  // Pass 1 (Section 4.4's generator over the whole dependence): a refined
  // vector may kill entire splits, e.g. Example 4's (0+,1) -> (0,1).
  unsigned WholeFixed = R.runPass(R.allIndices(), R.allIndices(), Result);
  Result.LoopsFixed = WholeFixed;

  // Pass 2 (per restraint vector): when the whole-dependence pass stalls,
  // each split can still be refined within its own restraint -- Example
  // 5's L1-carried split tightens to (1,1) while the L2 split keeps
  // (0,1), i.e. the paper's partial result (0:1,1).
  if (WholeFixed < R.numCommonLoops())
    for (unsigned I = 0; I != R.Levels.size(); ++I)
      if (R.Levels[I].Feasible)
        R.runPass({I}, {I}, Result);

  if (R.rebuildSplits())
    Result.Refined = true;
  return Result;
}
