//===- analysis/Driver.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
// The Section 4 pipeline itself lives in engine/DependenceEngine.cpp
// (analyzeProgram is implemented there on top of the DependenceEngine);
// this file only renders result tables.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"

using namespace omega;
using namespace omega::analysis;
using omega::deps::Dependence;
using omega::deps::DepSplit;

namespace {

void appendTableRow(std::string &Out, const Dependence &Dep,
                    const DepSplit &S) {
  std::string From =
      std::to_string(Dep.Src->StmtLabel) + ": " + Dep.Src->Text;
  std::string To = std::to_string(Dep.Dst->StmtLabel) + ": " + Dep.Dst->Text;
  std::string Dir = S.dirToString();
  std::string Status;
  if (Dep.Covers)
    Status += 'C';
  if (S.DeadReason == 'c')
    Status += 'c';
  if (S.DeadReason == 'k')
    Status += 'k';
  if (S.Refined)
    Status += 'r';

  Out += From;
  Out.append(From.size() < 22 ? 22 - From.size() : 1, ' ');
  Out += To;
  Out.append(To.size() < 22 ? 22 - To.size() : 1, ' ');
  Out += Dir;
  Out.append(Dir.size() < 12 ? 12 - Dir.size() : 1, ' ');
  if (!Status.empty())
    Out += "[" + Status + "]";
  Out += "\n";
}

} // namespace

std::string AnalysisResult::liveFlowTable() const {
  std::string Out = "FROM                  TO                    dir/dist    "
                    "status\n";
  for (const Dependence &Dep : Flow)
    for (const DepSplit &S : Dep.Splits)
      if (!S.Dead)
        appendTableRow(Out, Dep, S);
  return Out;
}

std::string AnalysisResult::deadFlowTable() const {
  std::string Out = "FROM                  TO                    dir/dist    "
                    "status\n";
  for (const Dependence &Dep : Flow)
    for (const DepSplit &S : Dep.Splits)
      if (S.Dead)
        appendTableRow(Out, Dep, S);
  return Out;
}
