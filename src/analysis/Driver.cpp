//===- analysis/Driver.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"

#include "analysis/Kills.h"
#include "analysis/Refine.h"

#include <chrono>
#include <map>

using namespace omega;
using namespace omega::analysis;
using omega::deps::DepKind;
using omega::deps::Dependence;
using omega::deps::DependenceAnalysis;
using omega::deps::DepSplit;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Quick-test database built from the output dependences.
struct OutputDepInfo {
  /// Pairs of write access ids with an output dependence.
  std::map<std::pair<unsigned, unsigned>, bool> HasOutputDep;
  /// Writes with a self-output dependence carried by some loop.
  std::map<unsigned, bool> HasCarriedSelfOutput;

  bool outputDep(const ir::Access &A, const ir::Access &B) const {
    auto It = HasOutputDep.find({A.Id, B.Id});
    return It != HasOutputDep.end() && It->second;
  }
  bool carriedSelfOutput(const ir::Access &A) const {
    auto It = HasCarriedSelfOutput.find(A.Id);
    return It != HasCarriedSelfOutput.end() && It->second;
  }
};

OutputDepInfo buildOutputInfo(const std::vector<Dependence> &Output) {
  OutputDepInfo Info;
  for (const Dependence &Dep : Output) {
    Info.HasOutputDep[{Dep.Src->Id, Dep.Dst->Id}] = true;
    if (Dep.Src == Dep.Dst)
      for (const DepSplit &S : Dep.Splits)
        if (S.Level != 0)
          Info.HasCarriedSelfOutput[Dep.Src->Id] = true;
  }
  return Info;
}

/// "W completely precedes the cover A": every execution of W that can
/// source the covered read runs before the covering instance. Two sound
/// syntactic cases (Section 4.2):
///  * W is textually before A and shares no loops with it (it runs wholly
///    before A's nest), or
///  * the cover is loop-independent (the covering instance shares the
///    common A/B iteration) and W is textually before A without being
///    nested more deeply with A than B is -- otherwise W could run after
///    the covering instance inside the extra shared loops, and the
///    general pairwise kill test must decide.
bool completelyPrecedesCover(const ir::Access &W, const Dependence &Cover) {
  const ir::Access &A = *Cover.Src;
  if (!ir::AnalyzedProgram::textuallyBefore(W, A))
    return false;
  unsigned CommonWA = ir::AnalyzedProgram::numCommonLoops(W, A);
  if (CommonWA == 0)
    return true;
  return Cover.CoverLoopIndependent &&
         CommonWA <= ir::AnalyzedProgram::numCommonLoops(A, *Cover.Dst);
}

} // namespace

AnalysisResult analysis::analyzeProgram(const ir::AnalyzedProgram &AP,
                                        const DriverOptions &Opts) {
  AnalysisResult Result;
  DependenceAnalysis DA(AP);

  // Step 1: output and anti dependences (unrefined).
  Result.Output = DA.computeDependences(DepKind::Output);
  Result.Anti = DA.computeDependences(DepKind::Anti);
  OutputDepInfo OutInfo = buildOutputInfo(Result.Output);

  // Step 2: per read, the flow dependences with refinement and coverage.
  std::vector<const ir::Access *> Writes, Reads;
  for (const ir::Access &A : AP.Accesses)
    (A.IsWrite ? Writes : Reads).push_back(&A);

  std::map<unsigned, std::vector<unsigned>> FlowByRead; // read id -> indices
  for (const ir::Access *Read : Reads) {
    for (const ir::Access *Write : Writes) {
      if (Write->Array != Read->Array)
        continue;
      PairRecord Record;
      Record.Write = Write;
      Record.Read = Read;

      auto StdStart = std::chrono::steady_clock::now();
      std::optional<Dependence> Dep =
          DA.computeDependence(*Write, *Read, DepKind::Flow);
      Record.StandardSecs = secondsSince(StdStart);

      auto ExtStart = std::chrono::steady_clock::now();
      if (Dep) {
        Record.HasFlow = true;
        // Refinement first (Section 4.4); a quick screen: refinement can
        // only help when the write has a carried self-output dependence.
        if (Opts.Refine &&
            (!Opts.QuickTests || OutInfo.carriedSelfOutput(*Write))) {
          RefineResult RR = refineDependence(AP, *Write, *Read, *Dep);
          Record.UsedGeneralTest |= RR.UsedGeneralTest;
          Record.SplitVectors |= Dep->Splits.size() > 1 && RR.UsedGeneralTest;
        }
        // Coverage next (Section 4.2).
        if (Opts.Cover &&
            (!Opts.QuickTests || coverQuickTestPasses(*Dep))) {
          Record.UsedGeneralTest = true;
          Record.SplitVectors |= Dep->Splits.size() > 1;
          if (covers(AP, *Write, *Read)) {
            Dep->Covers = true;
            Dep->CoverLoopIndependent =
                covers(AP, *Write, *Read, /*LoopIndependentOnly=*/true);
          }
        }
        FlowByRead[Read->Id].push_back(Result.Flow.size());
        Result.Flow.push_back(std::move(*Dep));
      }
      Record.ExtendedSecs = Record.StandardSecs + secondsSince(ExtStart);
      Result.Pairs.push_back(Record);
    }
  }

  // Step 3: covers kill dependences from writes that completely precede
  // them; Step 4: pairwise kill tests on what remains.
  if (Opts.Kill) {
    for (auto &[ReadId, DepIndices] : FlowByRead) {
      (void)ReadId;
      // Kill by cover.
      for (unsigned CoverIdx : DepIndices) {
        const Dependence &Cover = Result.Flow[CoverIdx];
        if (!Cover.Covers)
          continue;
        for (unsigned Idx : DepIndices) {
          if (Idx == CoverIdx)
            continue;
          Dependence &Victim = Result.Flow[Idx];
          if (!completelyPrecedesCover(*Victim.Src, Cover))
            continue;
          for (DepSplit &S : Victim.Splits)
            if (!S.Dead) {
              S.Dead = true;
              S.DeadReason = 'c';
            }
        }
      }
      // Pairwise killing.
      for (unsigned VictimIdx : DepIndices) {
        Dependence &Victim = Result.Flow[VictimIdx];
        for (unsigned KillerIdx : DepIndices) {
          if (KillerIdx == VictimIdx || Victim.allDead())
            continue;
          const Dependence &KillerDep = Result.Flow[KillerIdx];
          const ir::Access &Killer = *KillerDep.Src;
          if (&Killer == Victim.Src)
            continue;
          KillRecord KR;
          KR.From = Victim.Src;
          KR.Killer = &Killer;
          KR.To = Victim.Dst;
          auto Start = std::chrono::steady_clock::now();
          // Quick test: the killer must overwrite what the victim wrote,
          // i.e. there must be an output dependence victim -> killer.
          bool Plausible =
              !Opts.QuickTests || OutInfo.outputDep(*Victim.Src, Killer);
          if (Plausible) {
            KR.UsedOmega = true;
            for (DepSplit &S : Victim.Splits) {
              if (S.Dead)
                continue;
              if (kills(AP, *Victim.Src, Killer, *Victim.Dst, S.Level)) {
                S.Dead = true;
                S.DeadReason = 'k';
                KR.Killed = true;
              }
            }
          }
          KR.Secs = secondsSince(Start);
          Result.Kills.push_back(KR);
        }
      }
    }
  }

  // Optional extension: terminating analysis (Section 4.3). If some write
  // B overwrites everything A wrote (B terminates A) and every execution
  // of B precedes every execution of the destination, nothing can flow
  // from A past B, so the dependence is dead.
  if (Opts.Terminate) {
    for (Dependence &Dep : Result.Flow) {
      if (Dep.allDead())
        continue;
      for (const ir::Access *B : Writes) {
        if (B == Dep.Src || B->Array != Dep.Src->Array)
          continue;
        // Sound syntactic "wholly before the read" case.
        if (ir::AnalyzedProgram::numCommonLoops(*B, *Dep.Dst) != 0 ||
            !ir::AnalyzedProgram::textuallyBefore(*B, *Dep.Dst))
          continue;
        if (Opts.QuickTests && !OutInfo.outputDep(*Dep.Src, *B))
          continue;
        if (!terminates(AP, *Dep.Src, *B))
          continue;
        for (DepSplit &S : Dep.Splits)
          if (!S.Dead) {
            S.Dead = true;
            S.DeadReason = 'k';
          }
        break;
      }
    }
  }

  return Result;
}

namespace {

void appendTableRow(std::string &Out, const Dependence &Dep,
                    const DepSplit &S) {
  std::string From =
      std::to_string(Dep.Src->StmtLabel) + ": " + Dep.Src->Text;
  std::string To = std::to_string(Dep.Dst->StmtLabel) + ": " + Dep.Dst->Text;
  std::string Dir = S.dirToString();
  std::string Status;
  if (Dep.Covers)
    Status += 'C';
  if (S.DeadReason == 'c')
    Status += 'c';
  if (S.DeadReason == 'k')
    Status += 'k';
  if (S.Refined)
    Status += 'r';

  Out += From;
  Out.append(From.size() < 22 ? 22 - From.size() : 1, ' ');
  Out += To;
  Out.append(To.size() < 22 ? 22 - To.size() : 1, ' ');
  Out += Dir;
  Out.append(Dir.size() < 12 ? 12 - Dir.size() : 1, ' ');
  if (!Status.empty())
    Out += "[" + Status + "]";
  Out += "\n";
}

} // namespace

std::string AnalysisResult::liveFlowTable() const {
  std::string Out = "FROM                  TO                    dir/dist    "
                    "status\n";
  for (const Dependence &Dep : Flow)
    for (const DepSplit &S : Dep.Splits)
      if (!S.Dead)
        appendTableRow(Out, Dep, S);
  return Out;
}

std::string AnalysisResult::deadFlowTable() const {
  std::string Out = "FROM                  TO                    dir/dist    "
                    "status\n";
  for (const Dependence &Dep : Flow)
    for (const DepSplit &S : Dep.Splits)
      if (S.Dead)
        appendTableRow(Out, Dep, S);
  return Out;
}
