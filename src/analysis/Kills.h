//===- analysis/Kills.h - Killing, covering, terminating (Section 4) -----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4 predicates, each phrased as an implication between
/// projected constraint systems and decided with the extended Omega test:
///
///  * covers(A, B): write A writes every location B will access before B
///    accesses it (Section 4.2);
///  * terminates(A, B): write B overwrites every location A accessed
///    (Section 4.3);
///  * kills(A, B, C, Level): every value flowing along the A -> C
///    dependence split carried at Level is overwritten by B in between
///    (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_KILLS_H
#define OMEGA_ANALYSIS_KILLS_H

#include "deps/DependenceAnalysis.h"

namespace omega {
namespace analysis {

/// Section 4.2: does every location read (or written) by \p B receive an
/// earlier write from \p A? \p A must be a write to the same array. With
/// \p LoopIndependentOnly the covering instance must come from the same
/// iteration of every common loop (needed to know which other writes the
/// cover can kill, see Section 4.2's discussion of Example 2).
bool covers(const ir::AnalyzedProgram &AP, const ir::Access &A,
            const ir::Access &B, bool LoopIndependentOnly = false);

/// Section 4.3: is every location accessed by \p A subsequently
/// overwritten by write \p B?
bool terminates(const ir::AnalyzedProgram &AP, const ir::Access &A,
                const ir::Access &B);

/// Section 4.1: is the dependence split of A -> C carried at \p Level
/// (0 == loop-independent) killed by intervening writes of \p B?
bool kills(const ir::AnalyzedProgram &AP, const ir::Access &A,
           const ir::Access &B, const ir::Access &C, unsigned Level);

/// Section 4.5 quick screen for coverage: a dependence whose distance in
/// some common loop excludes 0 cannot cover the first trip of that loop.
/// Returns false when the general coverage test cannot possibly succeed.
bool coverQuickTestPasses(const deps::Dependence &Dep);

} // namespace analysis
} // namespace omega

#endif // OMEGA_ANALYSIS_KILLS_H
