//===- analysis/Transforms.cpp --------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include <algorithm>

using namespace omega;
using namespace omega::analysis;
using omega::deps::Dependence;
using omega::deps::DepSplit;

int analysis::commonLoopDepth(const Dependence &D, const ir::LoopInfo *L) {
  unsigned Common =
      ir::AnalyzedProgram::numCommonLoops(*D.Src, *D.Dst);
  for (unsigned K = 0; K != Common; ++K)
    if (D.Src->Loops[K] == L)
      return static_cast<int>(K);
  return -1;
}

namespace {

/// Local alias for the exported helper; reads better at call sites.
int commonDepthOf(const Dependence &D, const ir::LoopInfo *L) {
  return analysis::commonLoopDepth(D, L);
}

/// Does some live split of \p D run across iterations of \p L (i.e. carry
/// at L's level)? CountDead additionally reports whether a dead split
/// would have carried.
bool carriedBy(const Dependence &D, const ir::LoopInfo *L, bool &DeadWould) {
  int Depth = commonDepthOf(D, L);
  if (Depth < 0)
    return false;
  unsigned Level = static_cast<unsigned>(Depth) + 1;
  bool Live = false;
  for (const DepSplit &S : D.Splits) {
    if (S.Level != Level)
      continue;
    if (S.Dead)
      DeadWould = true;
    else
      Live = true;
  }
  return Live;
}

void scanKind(const std::vector<Dependence> &Deps, const ir::LoopInfo *L,
              LoopFacts &Facts, bool &DeadWouldCarry) {
  for (const Dependence &D : Deps) {
    bool DeadWould = false;
    if (carriedBy(D, L, DeadWould))
      Facts.Blockers.push_back(&D);
    DeadWouldCarry |= DeadWould;
  }
}

} // namespace

std::vector<LoopFacts> analysis::analyzeLoops(const ir::AnalyzedProgram &AP,
                                              const AnalysisResult &R) {
  std::vector<LoopFacts> Out;
  for (const std::unique_ptr<ir::LoopInfo> &L : AP.Loops) {
    LoopFacts Facts;
    Facts.Loop = L.get();
    bool DeadWouldCarry = false;
    scanKind(R.Flow, L.get(), Facts, DeadWouldCarry);
    Facts.FlowParallelizable = Facts.Blockers.empty();
    scanKind(R.Anti, L.get(), Facts, DeadWouldCarry);
    scanKind(R.Output, L.get(), Facts, DeadWouldCarry);
    Facts.Parallelizable = Facts.Blockers.empty();
    Facts.ParallelizableOnlyAfterKills =
        Facts.Parallelizable && DeadWouldCarry;
    Out.push_back(std::move(Facts));
  }
  return Out;
}

bool analysis::canInterchange(const AnalysisResult &R,
                              const ir::LoopInfo *Outer,
                              const ir::LoopInfo *Inner) {
  auto blocked = [&](const std::vector<Dependence> &Deps) {
    for (const Dependence &D : Deps) {
      int DO = commonDepthOf(D, Outer);
      int DI = commonDepthOf(D, Inner);
      if (DO < 0 || DI != DO + 1)
        continue; // the pair of loops does not enclose both endpoints
      for (const DepSplit &S : D.Splits) {
        if (S.Dead)
          continue;
        // Conservative: blocked when a (+, -) orientation is possible.
        const IntRange &A = S.Dir[DO].Range;
        const IntRange &B = S.Dir[DI].Range;
        bool OuterPlus = !A.Empty && (!A.HasMax || A.Max >= 1);
        bool InnerMinus = !B.Empty && (!B.HasMin || B.Min <= -1);
        if (OuterPlus && InnerMinus)
          return true;
      }
    }
    return false;
  };
  return !blocked(R.Flow) && !blocked(R.Anti) && !blocked(R.Output);
}

bool analysis::isPrivatizable(const ir::AnalyzedProgram &AP,
                              const AnalysisResult &R,
                              const std::string &Array,
                              const ir::LoopInfo *L) {
  for (const ir::Access &B : AP.Accesses) {
    if (B.IsWrite || B.Array != Array)
      continue;
    if (std::find(B.Loops.begin(), B.Loops.end(), L) == B.Loops.end())
      continue; // read not inside L

    // Every read inside L must get its value within the current L
    // iteration. Two requirements:
    //  * no live flow dependence whose source runs in a different
    //    iteration of L (carried at or above L, or from outside L), and
    //  * some write covers the read loop-independently (every element
    //    the read touches is written first in the same iteration);
    //    without a cover parts of the read are upward-exposed.
    bool Covered = false;
    for (const Dependence &D : R.Flow) {
      if (D.Dst != &B)
        continue;
      int Depth = commonDepthOf(D, L);
      for (const DepSplit &S : D.Splits) {
        if (S.Dead)
          continue;
        if (Depth < 0)
          return false; // value flows in from outside the loop
        if (S.Level >= 1 && S.Level <= static_cast<unsigned>(Depth) + 1)
          return false; // crosses iterations of L (or an outer loop)
      }
      Covered |= D.Covers && D.CoverLoopIndependent;
    }
    if (!Covered)
      return false; // (partially) upward-exposed read: needs copy-in
  }
  return true;
}

namespace {

/// Iterative Tarjan SCC over a small adjacency structure.
struct SCCFinder {
  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<int> Index, Low, Comp;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  int NextIndex = 0, NextComp = 0;

  explicit SCCFinder(const std::vector<std::vector<unsigned>> &Adj)
      : Adj(Adj), Index(Adj.size(), -1), Low(Adj.size(), 0),
        Comp(Adj.size(), -1), OnStack(Adj.size(), false) {
    for (unsigned V = 0; V != Adj.size(); ++V)
      if (Index[V] < 0)
        strongConnect(V);
  }

  void strongConnect(unsigned Root) {
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<unsigned, unsigned>> Work{{Root, 0}};
    while (!Work.empty()) {
      auto &[V, Child] = Work.back();
      if (Child == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (Child < Adj[V].size()) {
        unsigned W = Adj[V][Child++];
        if (Index[W] < 0) {
          Work.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      if (Low[V] == Index[V]) {
        while (true) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Comp[W] = NextComp;
          if (W == V)
            break;
        }
        ++NextComp;
      }
      unsigned Done = V;
      Work.pop_back();
      if (!Work.empty())
        Low[Work.back().first] =
            std::min(Low[Work.back().first], Low[Done]);
    }
  }
};

} // namespace

std::vector<DistributionGroup>
analysis::distributeLoop(const ir::AnalyzedProgram &AP,
                         const AnalysisResult &R, const ir::LoopInfo *L) {
  // Statements (by label) whose access nests include L.
  std::vector<unsigned> Stmts;
  std::map<unsigned, unsigned> NodeOf; // label -> node index
  for (const ir::Access &A : AP.Accesses) {
    if (std::find(A.Loops.begin(), A.Loops.end(), L) == A.Loops.end())
      continue;
    if (!NodeOf.count(A.StmtLabel)) {
      NodeOf[A.StmtLabel] = Stmts.size();
      Stmts.push_back(A.StmtLabel);
    }
  }

  // Edges: live dependences between statements of L, restricted to
  // within-L behavior (carried by L or deeper, or loop-independent).
  std::vector<std::vector<unsigned>> Adj(Stmts.size());
  auto addEdges = [&](const std::vector<Dependence> &Deps) {
    for (const Dependence &D : Deps) {
      auto SrcIt = NodeOf.find(D.Src->StmtLabel);
      auto DstIt = NodeOf.find(D.Dst->StmtLabel);
      if (SrcIt == NodeOf.end() || DstIt == NodeOf.end())
        continue;
      int Depth = commonDepthOf(D, L);
      if (Depth < 0)
        continue;
      for (const DepSplit &S : D.Splits) {
        if (S.Dead)
          continue;
        // Levels above L order whole L-instances; they do not constrain
        // distribution of L's body.
        if (S.Level >= 1 && S.Level <= static_cast<unsigned>(Depth))
          continue;
        Adj[SrcIt->second].push_back(DstIt->second);
        break;
      }
    }
  };
  addEdges(R.Flow);
  addEdges(R.Anti);
  addEdges(R.Output);

  SCCFinder SCC(Adj);

  // Tarjan numbers components in reverse topological order; emit groups
  // in forward order (dependence sources first), statements in program
  // order inside each group.
  std::vector<DistributionGroup> Groups(SCC.NextComp);
  for (unsigned V = 0; V != Stmts.size(); ++V) {
    DistributionGroup &G = Groups[SCC.NextComp - 1 - SCC.Comp[V]];
    G.StmtLabels.push_back(Stmts[V]);
  }
  // Any edge inside a component marks it cyclic (including self edges).
  for (unsigned V = 0; V != Stmts.size(); ++V)
    for (unsigned W : Adj[V])
      if (SCC.Comp[V] == SCC.Comp[W])
        Groups[SCC.NextComp - 1 - SCC.Comp[V]].Cyclic = true;
  for (DistributionGroup &G : Groups)
    std::sort(G.StmtLabels.begin(), G.StmtLabels.end());
  return Groups;
}

std::string analysis::transformReport(const ir::AnalyzedProgram &AP,
                                      const AnalysisResult &R) {
  std::string Out;
  std::vector<LoopFacts> Loops = analyzeLoops(AP, R);
  for (const LoopFacts &F : Loops) {
    Out += "loop " + F.Loop->SourceVar + " (depth " +
           std::to_string(F.Loop->Depth + 1) + "): ";
    if (F.Parallelizable) {
      Out += "parallelizable";
      if (F.ParallelizableOnlyAfterKills)
        Out += " (only after eliminating false dependences)";
    } else if (F.FlowParallelizable) {
      Out += "parallelizable after storage elimination (only anti/output "
             "dependences carried)";
    } else {
      Out += "serial; carried:";
      for (const Dependence *D : F.Blockers)
        Out += " " + D->Src->Text + "->" + D->Dst->Text;
    }
    Out += "\n";
  }
  // Adjacent-loop interchange opportunities.
  for (const std::unique_ptr<ir::LoopInfo> &Outer : AP.Loops)
    for (const std::unique_ptr<ir::LoopInfo> &Inner : AP.Loops) {
      if (Inner->Depth != Outer->Depth + 1)
        continue;
      // Inner must be nested directly inside Outer.
      if (Inner->Path.size() < Outer->Path.size() ||
          !std::equal(Outer->Path.begin(), Outer->Path.end(),
                      Inner->Path.begin()))
        continue;
      Out += "interchange(" + Outer->SourceVar + ", " + Inner->SourceVar +
             "): " +
             (canInterchange(R, Outer.get(), Inner.get()) ? "legal"
                                                          : "illegal") +
             "\n";
    }
  // Distribution: only interesting when a loop body can actually split.
  for (const std::unique_ptr<ir::LoopInfo> &L : AP.Loops) {
    std::vector<DistributionGroup> Groups = distributeLoop(AP, R, L.get());
    if (Groups.size() < 2)
      continue;
    Out += "distribute " + L->SourceVar + ":";
    for (const DistributionGroup &G : Groups) {
      Out += " {";
      for (unsigned I = 0; I != G.StmtLabels.size(); ++I)
        Out += (I ? "," : "") + std::to_string(G.StmtLabels[I]);
      Out += G.Cyclic ? "}*" : "}";
    }
    Out += "\n";
  }
  return Out;
}
