//===- analysis/Kills.cpp -------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Kills.h"

#include "analysis/Implication.h"
#include "obs/Trace.h"
#include "omega/OmegaContext.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

using namespace omega;
using namespace omega::analysis;
using omega::deps::DepSpace;

namespace {

/// Keep-mask over a DepSpace problem that drops the iteration variables of
/// one instance (plus any extra columns the problem acquired).
std::vector<bool> keepAllBut(const Problem &P, const DepSpace &Space,
                             unsigned Inst) {
  std::vector<bool> Keep(P.getNumVars(), true);
  for (unsigned D = 0; D != Space.access(Inst).Loops.size(); ++D)
    Keep[Space.iterVar(Inst, D)] = false;
  return Keep;
}

/// Projects away instance \p Inst from each ordering case and returns the
/// union of the resulting pieces. A poisoned (overflowed) projection
/// yields the empty union: used on the right-hand side of the Section 4
/// implications, that makes the proof fail -- the conservative outcome.
std::vector<Problem> projectAwayInstance(std::vector<Problem> Cases,
                                         const DepSpace &Space,
                                         unsigned Inst) {
  std::vector<Problem> Pieces;
  for (Problem &Case : Cases) {
    ProjectionResult R =
        projectOntoMask(Case, keepAllBut(Case, Space, Inst),
                        ProjectOptions{/*RemoveRedundant=*/false,
                                       /*DropEmptyPieces=*/true});
    if (R.Poisoned)
      return {};
    for (Problem &Piece : R.Pieces)
      Pieces.push_back(std::move(Piece));
  }
  return Pieces;
}

} // namespace

bool analysis::covers(const ir::AnalyzedProgram &AP, const ir::Access &A,
                      const ir::Access &B, bool LoopIndependentOnly) {
  assert(A.IsWrite && A.Array == B.Array && "cover needs a same-array write");
  obs::ScopedSpan Span(OmegaContext::current().Trace, obs::SpanKind::Cover);
  // Rank-mismatched references (a(x) vs. a(x,y)) only MAY alias; a cover
  // claims the write definitely produces every element the read touches,
  // which needs must-alias reasoning.
  if (A.Subscripts.size() != B.Subscripts.size())
    return false;
  DepSpace Space(AP, {&A, &B});

  // LHS: j in [B].
  Problem LHS = Space.base();
  Space.addIterationSpace(LHS, 1);

  // RHS: exists i in [A] with A(i) << B(j) and equal subscripts.
  Problem RHS = Space.base();
  Space.addIterationSpace(RHS, 0);
  Space.addSubscriptsEqual(RHS, 0, 1);
  std::vector<Problem> Cases;
  if (LoopIndependentOnly) {
    if (!Space.textuallyBefore(0, 1))
      return false;
    Problem Case = RHS;
    Space.addPrecedesAtLevel(Case, 0, 1, 0);
    Cases.push_back(std::move(Case));
  } else {
    Cases = Space.precedesCases(RHS, 0, 1);
  }
  std::vector<Problem> Pieces =
      projectAwayInstance(std::move(Cases), Space, 0);

  return checkImplication(LHS, std::move(Pieces));
}

bool analysis::terminates(const ir::AnalyzedProgram &AP, const ir::Access &A,
                          const ir::Access &B) {
  assert(B.IsWrite && A.Array == B.Array &&
         "termination needs a same-array write");
  obs::ScopedSpan Span(OmegaContext::current().Trace, obs::SpanKind::Kill);
  // Must-alias reasoning: see covers().
  if (A.Subscripts.size() != B.Subscripts.size())
    return false;
  DepSpace Space(AP, {&A, &B});

  // LHS: i in [A].
  Problem LHS = Space.base();
  Space.addIterationSpace(LHS, 0);

  // RHS: exists j in [B] with A(i) << B(j) and equal subscripts.
  Problem RHS = Space.base();
  Space.addIterationSpace(RHS, 1);
  Space.addSubscriptsEqual(RHS, 0, 1);
  std::vector<Problem> Pieces =
      projectAwayInstance(Space.precedesCases(RHS, 0, 1), Space, 1);

  return checkImplication(LHS, std::move(Pieces));
}

bool analysis::kills(const ir::AnalyzedProgram &AP, const ir::Access &A,
                     const ir::Access &B, const ir::Access &C,
                     unsigned Level) {
  assert(B.IsWrite && B.Array == A.Array && A.Array == C.Array &&
         "killer must write the same array");
  obs::ScopedSpan Span(OmegaContext::current().Trace, obs::SpanKind::Kill);
  // The killer must DEFINITELY overwrite what flows from A to C, which
  // needs must-alias reasoning: rank-mismatched references only may
  // alias, so they cannot kill.
  if (B.Subscripts.size() != C.Subscripts.size() ||
      A.Subscripts.size() != C.Subscripts.size())
    return false;
  DepSpace Space(AP, {&A, &B, &C});

  // LHS: i in [A], k in [C], A(i) << C(k) at the split's level, equal
  // subscripts.
  Problem LHS = Space.base();
  Space.addIterationSpace(LHS, 0);
  Space.addIterationSpace(LHS, 2);
  Space.addSubscriptsEqual(LHS, 0, 2);
  if (Level == 0 && !Space.textuallyBefore(0, 2))
    return false; // no loop-independent dependence to kill
  Space.addPrecedesAtLevel(LHS, 0, 2, Level);

  // RHS: exists j in [B] with A(i) << B(j) << C(k) and B(j) =sub= C(k).
  Problem RHS = Space.base();
  Space.addIterationSpace(RHS, 1);
  Space.addSubscriptsEqual(RHS, 1, 2);
  std::vector<Problem> Pieces;
  for (const Problem &Mid : Space.precedesCases(RHS, 0, 1)) {
    std::vector<Problem> Full = Space.precedesCases(Mid, 1, 2);
    std::vector<Problem> Projected =
        projectAwayInstance(std::move(Full), Space, 1);
    for (Problem &Piece : Projected)
      Pieces.push_back(std::move(Piece));
  }

  return checkImplication(LHS, std::move(Pieces));
}

bool analysis::coverQuickTestPasses(const deps::Dependence &Dep) {
  if (Dep.Splits.empty())
    return false;
  unsigned Common = Dep.Splits.front().Dir.size();
  for (unsigned L = 0; L != Common; ++L) {
    bool ZeroPossible = false;
    for (const deps::DepSplit &S : Dep.Splits) {
      const IntRange &R = S.Dir[L].Range;
      if (R.Empty)
        continue;
      bool LoOk = !R.HasMin || R.Min <= 0;
      bool HiOk = !R.HasMax || R.Max >= 0;
      if (LoOk && HiOk) {
        ZeroPossible = true;
        break;
      }
    }
    if (!ZeroPossible)
      return false; // cannot cover the first trip of loop L
  }
  return true;
}
