//===- analysis/Transforms.h - Transformation legality queries ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumers the paper's introduction motivates: transformation
/// legality queries driven by the (refined, kill-aware) dependence
/// information.
///
///  * Parallelization: a loop runs as a DOALL when no live dependence is
///    carried by it. Killing false flow dependences and refining
///    distances is exactly what exposes this.
///  * Interchange: two adjacent loops may be interchanged when no live
///    dependence has a direction vector of the form (..., +, -, ...) at
///    those positions (swapping would reverse its orientation).
///  * Privatization: an array is privatizable in a loop when every read
///    inside is covered loop-independently (the same iteration writes the
///    element first) -- the paper's flagship reason to separate memory-
///    based from value-based flow dependences.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_TRANSFORMS_H
#define OMEGA_ANALYSIS_TRANSFORMS_H

#include "analysis/Driver.h"

#include <string>
#include <vector>

namespace omega {
namespace analysis {

/// Depth of loop \p L among the loops common to both endpoints of \p D
/// (0-based), or -1 when L does not enclose both. Splits at levels
/// [1, depth] are carried by loops outside L; level depth+1 is carried by
/// L itself; level 0 and levels beyond depth+1 stay within one iteration
/// of L. Shared by the legality queries here and the pipeline PDG builder
/// in transform/Pdg.h.
int commonLoopDepth(const deps::Dependence &D, const ir::LoopInfo *L);

/// Per-loop transformation facts derived from one analysis result.
struct LoopFacts {
  const ir::LoopInfo *Loop = nullptr;
  /// No live dependence (flow, anti, or output) is carried by this loop.
  bool Parallelizable = false;
  /// No live *flow* dependence is carried: anti/output (storage)
  /// dependences can be removed by privatization, renaming, or array
  /// expansion, so this is the paper's "parallelizable once storage is
  /// fixed" verdict -- exactly why accurate flow information matters
  /// (Section 1).
  bool FlowParallelizable = false;
  /// Same, but ignoring dead (killed/covered) flow splits would NOT have
  /// been enough -- i.e. the Section 4 analyses made the difference.
  bool ParallelizableOnlyAfterKills = false;
  /// The dependences carried by this loop that block parallelization.
  std::vector<const deps::Dependence *> Blockers;
};

/// Computes the per-loop facts for every loop of the program.
std::vector<LoopFacts> analyzeLoops(const ir::AnalyzedProgram &AP,
                                    const AnalysisResult &R);

/// May the loops at depths (Outer, Outer+1) -- 0-based, for the loop nest
/// enclosing both endpoints of every dependence -- be interchanged?
/// Checks that no live dependence has direction (+, -) at those levels.
bool canInterchange(const AnalysisResult &R, const ir::LoopInfo *Outer,
                    const ir::LoopInfo *Inner);

/// Is \p Array privatizable with respect to loop \p L: does every read of
/// the array inside L receive its value from a write in the same
/// iteration of L (so each iteration can use a private copy)?
bool isPrivatizable(const ir::AnalyzedProgram &AP, const AnalysisResult &R,
                    const std::string &Array, const ir::LoopInfo *L);

/// Loop distribution (fission): the statements directly or indirectly
/// inside loop \p L, grouped into the strongly connected components of
/// the dependence graph restricted to L (carried-by-L or inside-L
/// loop-independent edges), in a legal execution order. Each group can
/// become its own loop; a group of one statement with no self-carried
/// dependence vectorizes.
struct DistributionGroup {
  std::vector<unsigned> StmtLabels; ///< statements, program order
  bool Cyclic = false; ///< a dependence cycle: must stay together
};
std::vector<DistributionGroup> distributeLoop(const ir::AnalyzedProgram &AP,
                                              const AnalysisResult &R,
                                              const ir::LoopInfo *L);

/// Human-readable report of all transformation opportunities.
std::string transformReport(const ir::AnalyzedProgram &AP,
                            const AnalysisResult &R);

} // namespace analysis
} // namespace omega

#endif // OMEGA_ANALYSIS_TRANSFORMS_H
