//===- analysis/Refine.h - Dependence distance refinement (Section 4.4) --===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Refinement tightens the distance vector of a dependence from a write A
/// to an access B: if every iteration of B that receives the dependence
/// also receives it from a *more recent* iteration of A at distance D, the
/// dependence can be refined to D. Candidates are generated the way the
/// paper prescribes: fix each loop's distance to its minimum possible
/// value over the unrefined dependence, outermost first, verifying each
/// extension with the extended Omega test and stopping at the first
/// failure. Refinement is a whole-dependence transformation -- it can move
/// a dependence to a deeper carried level (Example 4's trapezoidal loop
/// refines (0+,1) to (0,1)) -- so it rewrites the split list. The
/// trapezoidal, partial, and coupled cases (Examples 3-6) that [Bra88] and
/// [Rib90] cannot handle all work here.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_REFINE_H
#define OMEGA_ANALYSIS_REFINE_H

#include "deps/DependenceAnalysis.h"

namespace omega {
namespace analysis {

struct RefineResult {
  bool Refined = false;         ///< the split list was tightened
  bool UsedGeneralTest = false; ///< the Omega test was consulted
  unsigned LoopsFixed = 0;      ///< loops whose distance is now constant
};

/// Attempts to refine \p Dep (a dependence from write \p A to access
/// \p B), rewriting its splits in place on success.
RefineResult refineDependence(const ir::AnalyzedProgram &AP,
                              const ir::Access &A, const ir::Access &B,
                              deps::Dependence &Dep);

} // namespace analysis
} // namespace omega

#endif // OMEGA_ANALYSIS_REFINE_H
