//===- analysis/Implication.cpp -------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Implication.h"

#include "omega/Gist.h"
#include "omega/Satisfiability.h"

#include <map>

using namespace omega;
using namespace omega::analysis;


bool analysis::checkImplication(const Problem &LHS,
                                std::vector<Problem> Pieces) {
  if (!isSatisfiable(LHS))
    return true; // vacuous

  // Drop pieces disjoint from the left-hand side: they cannot help cover
  // it, and every negation branch they would add slows the union check.
  unsigned SharedVars = LHS.getNumVars();
  std::vector<Problem> Relevant;
  for (Problem &Piece : Pieces)
    if (isSatisfiable(conjoinExtending(LHS, Piece, SharedVars)))
      Relevant.push_back(std::move(Piece));
  if (Relevant.empty())
    return false;

  // Fast path: one piece alone often suffices (the common case in the
  // paper's examples).
  for (const Problem &Piece : Relevant)
    if (impliesUnion(LHS, {Piece}))
      return true;
  if (Relevant.size() == 1)
    return false;
  return impliesUnion(LHS, Relevant);
}
