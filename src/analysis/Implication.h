//===- analysis/Implication.h - Implication plumbing for Section 4 -------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4 analyses all reduce to checking that a conjunction (the
/// left-hand side of a universally quantified implication) is covered by a
/// union of projected pieces. checkImplication() adds the practical
/// plumbing around omega::impliesUnion: pre-filtering pieces that do not
/// intersect the left-hand side, and a single-piece fast path.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ANALYSIS_IMPLICATION_H
#define OMEGA_ANALYSIS_IMPLICATION_H

#include "omega/Gist.h"
#include "omega/Problem.h"

#include <vector>

namespace omega {
namespace analysis {

/// Does \p LHS imply the union of \p Pieces (over integer points, with
/// unprotected variables existential on both sides)? Conservative: may
/// return false when a piece's stride structure cannot be negated.
bool checkImplication(const Problem &LHS, std::vector<Problem> Pieces);

} // namespace analysis
} // namespace omega

#endif // OMEGA_ANALYSIS_IMPLICATION_H
