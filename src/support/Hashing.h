//===- support/Hashing.h - Shared structural-hash primitives -------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one hashing scheme shared by every structural canonicalization in
/// the Omega core: Problem::normalize()'s hash-bucketed row merging, the
/// Constraint row signature it is built from, and QueryCache's
/// variable-order-independent satisfiability keys. Keeping these on a
/// single mixer guarantees the cache key and the normalizer agree on what
/// "structurally equal" means.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_HASHING_H
#define OMEGA_SUPPORT_HASHING_H

#include <cstdint>

namespace omega {

/// Finalizer of splitmix64: a cheap, well-distributed 64-bit mixer.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Mixes one (position, value) coefficient pair into a commutative
/// accumulator: callers sum these, so the hash of a set of pairs is
/// independent of visit order.
inline uint64_t hashCoeffTerm(unsigned Position, int64_t Value) {
  return mix64(mix64(static_cast<uint64_t>(Position) + 1) ^
               static_cast<uint64_t>(Value));
}

} // namespace omega

#endif // OMEGA_SUPPORT_HASHING_H
