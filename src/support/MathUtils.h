//===- support/MathUtils.h - Checked integer arithmetic helpers ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer arithmetic primitives used throughout the Omega test:
/// gcd/lcm, floor/ceiling division, the symmetric ("mod-hat") remainder used
/// by equality elimination, and overflow-checked add/mul.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_MATHUTILS_H
#define OMEGA_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>

namespace omega {

/// Returns the sign of \p A as -1, 0, or +1.
inline int signOf(int64_t A) { return (A > 0) - (A < 0); }

/// Returns |A|, asserting that the value is representable (A != INT64_MIN).
inline int64_t absVal(int64_t A) {
  assert(A != INT64_MIN && "absVal overflow");
  return A < 0 ? -A : A;
}

/// Fourier-Motzkin chains can blow coefficients up doubly exponentially.
/// Rather than aborting, arithmetic saturates at +/-CoeffCap and raises a
/// sticky per-thread flag; every decision procedure checks the flag and
/// falls back to its conservative answer ("maybe satisfiable", "cannot
/// prove the implication", "unbounded range") -- the same containment the
/// original Omega library's "too big" guards provide.
constexpr int64_t CoeffCap = int64_t(1) << 62;

/// Sticky overflow flag for the current thread. Callers that need a
/// per-computation verdict save/clear/restore it around the computation.
inline bool &arithOverflowFlag() {
  thread_local bool Flag = false;
  return Flag;
}

inline int64_t clampCoeff(__int128 V) {
  if (V > CoeffCap) {
    arithOverflowFlag() = true;
    return CoeffCap;
  }
  if (V < -CoeffCap) {
    arithOverflowFlag() = true;
    return -CoeffCap;
  }
  return static_cast<int64_t>(V);
}

/// Saturating addition; overflow raises arithOverflowFlag().
inline int64_t checkedAdd(int64_t A, int64_t B) {
  return clampCoeff(static_cast<__int128>(A) + B);
}

/// Saturating subtraction; overflow raises arithOverflowFlag().
inline int64_t checkedSub(int64_t A, int64_t B) {
  return clampCoeff(static_cast<__int128>(A) - B);
}

/// Saturating multiplication; overflow raises arithOverflowFlag().
inline int64_t checkedMul(int64_t A, int64_t B) {
  return clampCoeff(static_cast<__int128>(A) * B);
}

/// RAII helper: clears the overflow flag on entry; on destruction, ORs
/// whatever happened back into the surrounding scope's view.
class OverflowScope {
public:
  OverflowScope() : Saved(arithOverflowFlag()) {
    arithOverflowFlag() = false;
  }
  ~OverflowScope() { arithOverflowFlag() |= Saved; }
  bool overflowed() const { return arithOverflowFlag(); }

private:
  bool Saved;
};

/// Greatest common divisor; result is non-negative. gcd(0, 0) == 0.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple; result is non-negative. Asserts on overflow.
int64_t lcm64(int64_t A, int64_t B);

/// Floor division: largest Q with Q * B <= A. Requires B > 0.
inline int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0 && "floorDiv requires positive divisor");
  int64_t Q = A / B;
  if ((A % B) != 0 && A < 0)
    --Q;
  return Q;
}

/// Ceiling division: smallest Q with Q * B >= A. Requires B > 0.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv requires positive divisor");
  int64_t Q = A / B;
  if ((A % B) != 0 && A > 0)
    ++Q;
  return Q;
}

/// The symmetric remainder "a mod-hat b" from [Pug91]:
///   modHat(A, B) = A - B * floor(A / B + 1 / 2)
/// The result R satisfies |R| <= B/2 and R == A (mod B). Requires B > 0.
inline int64_t modHat(int64_t A, int64_t B) {
  assert(B > 0 && "modHat requires positive modulus");
  return A - checkedMul(B, floorDiv(checkedAdd(checkedMul(2, A), B),
                                    checkedMul(2, B)));
}

} // namespace omega

#endif // OMEGA_SUPPORT_MATHUTILS_H
