//===- support/SmallCoeffVector.h - Inline-storage coefficient rows ------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small-size-optimized vector of int64_t coefficients: values up to
/// InlineCapacity live directly inside the object (no heap traffic), longer
/// rows spill to a heap buffer. Constraint rows are the single hottest
/// allocation in the Omega core -- dependence problems are copied, combined
/// and splintered thousands of times per analysis -- and typical problems
/// have few variables, so the inline path makes row construction and
/// Problem copies allocation-free.
///
/// The type deliberately supports only what Constraint needs: construction
/// filled with zeros, grow-only resize, element access, raw data pointers
/// for the batched arithmetic loops, and equality. Elements are trivially
/// copyable, so copies are memcpy and moves of inline storage are copies.
///
/// Heap spills are counted per thread (heapAllocationsThisThread) so tests
/// can assert the zero-allocation property for rows within the inline
/// capacity.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_SUPPORT_SMALLCOEFFVECTOR_H
#define OMEGA_SUPPORT_SMALLCOEFFVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstring>

namespace omega {

class SmallCoeffVector {
public:
  /// Rows with at most this many coefficients never touch the heap. Eight
  /// covers the bulk of dependence problems (two nests of depth <= 3 plus
  /// a couple of symbolic constants) while keeping a Constraint about one
  /// cache line; see DESIGN.md "Core data layout".
  static constexpr unsigned InlineCapacity = 8;

  /// Number of heap buffers this thread has allocated through
  /// SmallCoeffVector since thread start. Tests diff it around an
  /// operation to prove the inline path stays allocation-free.
  static uint64_t &heapAllocationsThisThread() {
    thread_local uint64_t Count = 0;
    return Count;
  }

  SmallCoeffVector() = default;

  /// Constructs \p N zero coefficients.
  explicit SmallCoeffVector(unsigned N) { resize(N); }

  SmallCoeffVector(const SmallCoeffVector &O) { copyFrom(O); }

  SmallCoeffVector(SmallCoeffVector &&O) noexcept {
    if (O.isInline()) {
      Size = O.Size;
      std::memcpy(Inline, O.Inline, Size * sizeof(int64_t));
    } else {
      Heap = O.Heap;
      Size = O.Size;
      Cap = O.Cap;
      O.Heap = nullptr;
      O.Size = 0;
      O.Cap = InlineCapacity;
    }
  }

  SmallCoeffVector &operator=(const SmallCoeffVector &O) {
    if (this != &O) {
      // Reuse an existing heap buffer when it fits; never shrink back.
      if (O.Size <= Cap) {
        Size = O.Size;
        std::memcpy(data(), O.data(), Size * sizeof(int64_t));
      } else {
        freeHeap();
        copyFrom(O);
      }
    }
    return *this;
  }

  SmallCoeffVector &operator=(SmallCoeffVector &&O) noexcept {
    if (this != &O) {
      freeHeap();
      if (O.isInline()) {
        Heap = nullptr;
        Cap = InlineCapacity;
        Size = O.Size;
        std::memcpy(Inline, O.Inline, Size * sizeof(int64_t));
      } else {
        Heap = O.Heap;
        Size = O.Size;
        Cap = O.Cap;
        O.Heap = nullptr;
        O.Size = 0;
        O.Cap = InlineCapacity;
      }
    }
    return *this;
  }

  ~SmallCoeffVector() { freeHeap(); }

  unsigned size() const { return Size; }
  bool empty() const { return Size == 0; }

  int64_t *data() { return Heap ? Heap : Inline; }
  const int64_t *data() const { return Heap ? Heap : Inline; }

  int64_t &operator[](unsigned I) {
    assert(I < Size && "coefficient index out of range");
    return data()[I];
  }
  int64_t operator[](unsigned I) const {
    assert(I < Size && "coefficient index out of range");
    return data()[I];
  }

  int64_t *begin() { return data(); }
  int64_t *end() { return data() + Size; }
  const int64_t *begin() const { return data(); }
  const int64_t *end() const { return data() + Size; }

  /// Grow-only resize; new elements are zero. (Constraint rows only ever
  /// gain variables; dead columns are compacted by rebuilding the row.)
  void resize(unsigned N) {
    if (N > Cap)
      grow(N);
    if (N > Size)
      std::memset(data() + Size, 0, (N - Size) * sizeof(int64_t));
    Size = N;
  }

  friend bool operator==(const SmallCoeffVector &A,
                         const SmallCoeffVector &B) {
    return A.Size == B.Size &&
           std::memcmp(A.data(), B.data(), A.Size * sizeof(int64_t)) == 0;
  }

private:
  bool isInline() const { return Heap == nullptr; }

  void copyFrom(const SmallCoeffVector &O) {
    Size = O.Size;
    if (Size <= InlineCapacity) {
      Heap = nullptr;
      Cap = InlineCapacity;
      std::memcpy(Inline, O.data(), Size * sizeof(int64_t));
    } else {
      Heap = allocate(Size);
      Cap = Size;
      std::memcpy(Heap, O.Heap, Size * sizeof(int64_t));
    }
  }

  void grow(unsigned N) {
    // Double so long chains of addVar stay amortized-constant.
    unsigned NewCap = Cap * 2 < N ? N : Cap * 2;
    int64_t *NewHeap = allocate(NewCap);
    std::memcpy(NewHeap, data(), Size * sizeof(int64_t));
    freeHeap();
    Heap = NewHeap;
    Cap = NewCap;
  }

  static int64_t *allocate(unsigned N) {
    ++heapAllocationsThisThread();
    return new int64_t[N];
  }

  void freeHeap() {
    delete[] Heap;
    Heap = nullptr;
    Cap = InlineCapacity;
  }

  int64_t *Heap = nullptr; ///< null while the row fits inline
  unsigned Size = 0;
  unsigned Cap = InlineCapacity;
  int64_t Inline[InlineCapacity];
};

} // namespace omega

#endif // OMEGA_SUPPORT_SMALLCOEFFVECTOR_H
