//===- support/MathUtils.cpp ----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

using namespace omega;

int64_t omega::gcd64(int64_t A, int64_t B) {
  A = absVal(A);
  B = absVal(B);
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t omega::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  return checkedMul(absVal(A) / G, absVal(B));
}
