//===- obs/Trace.h - Context-scoped tracing for the Omega core -----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight tracing and profiling layer for the Omega core and the
/// dependence engine. The design mirrors the paper's evaluation style:
/// Figure 6 classifies every dependence query by how hard the Omega test
/// worked, and Section 6 reports where time goes -- here every decision
/// procedure entry point records a *span* (monotonic-clock duration,
/// nesting depth, the OmegaStats counter movement across the span, cache
/// hit/miss tags and the constraint problem size at entry), and the
/// Section 4 pipeline records *decision* events explaining which mechanism
/// settled each array pair.
///
/// Recording is context-scoped and lock-free: an OmegaContext optionally
/// points at a TraceBuffer, and every buffer has exactly one writer (the
/// thread owning the context), so recording never takes a lock. A Tracer
/// owns the buffers of a run -- the engine registers one per worker -- and
/// merges them deterministically afterwards: events carry a (task key,
/// sequence) pair assigned in the serial enumeration order of the engine's
/// work items, so the merged stream is identical for every worker count.
///
/// With no tracer attached (Ctx.Trace == nullptr) the instrumentation is a
/// single inlined null check per site: no span is recorded, nothing is
/// allocated, and the hot path is unchanged (TracerTest pins this down
/// with the same thread-local counter trick SmallCoeffVector uses for its
/// zero-allocation property).
///
/// Three sinks consume a Tracer:
///  * chromeTraceJson(): Chrome trace_event JSON, loadable in
///    chrome://tracing or Perfetto, one track per registered buffer;
///  * profileReport(): per-phase wall time (self and inclusive), call
///    counts, cache hit rates and a Figure-6-style query classification,
///    as text or JSON;
///  * explainLog(): per work item, which mechanism decided the outcome
///    (dark shadow, real shadow, gist fast-check, kill/cover, refinement)
///    with the constraint problem sizes involved.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OBS_TRACE_H
#define OMEGA_OBS_TRACE_H

#include "omega/OmegaStats.h"

#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace omega {
namespace obs {

/// What a span measures. Scoped spans cover the decision-procedure entry
/// points and the engine's work items; Decision is a zero-duration event
/// recording *why* an outcome happened (the explain log's raw material).
enum class SpanKind : uint8_t {
  Sat,        ///< isSatisfiable entry
  Projection, ///< projectOntoMask entry
  Gist,       ///< gist entry
  FMEliminate,///< one Fourier-Motzkin variable elimination
  Splinter,   ///< exploration of one splinter problem
  EqSolve,    ///< solveEqualities entry
  Kill,       ///< Section 4.1/4.3 kill / terminate predicate
  Cover,      ///< Section 4.2 coverage predicate
  Refine,     ///< Section 4.4 refinement of one dependence
  SnapshotBuild, ///< construction of one pair elimination snapshot
  QuickTest,  ///< ZIV/GCD/bounds pre-filter over one pair
  EngineTask, ///< one engine work item (pair / flow / kill group)
  Decision,   ///< instant event: a mechanism decided an outcome
  NumKinds
};

const char *spanKindName(SpanKind K);

/// Whether a sat/gist span was answered from the QueryCache.
enum class CacheTag : uint8_t { None, Hit, Miss };

/// One recorded span (or instant decision event).
struct TraceEvent {
  SpanKind Kind = SpanKind::Sat;
  CacheTag Cache = CacheTag::None;
  uint16_t Depth = 0;    ///< nesting depth inside the buffer at begin
  uint32_t Vars = 0;     ///< problem size at entry: live variables ...
  uint32_t Rows = 0;     ///< ... and constraint rows
  uint64_t TaskKey = 0;  ///< deterministic work-item key (merge order)
  uint32_t Seq = 0;      ///< event sequence within the task
  uint64_t StartNs = 0;  ///< monotonic, relative to the buffer's epoch
  uint64_t DurNs = 0;    ///< 0 for Decision events
  uint64_t ChildNs = 0;  ///< summed duration of direct children
  OmegaStats Delta;      ///< counter movement across the span
  std::string Label;     ///< pair names / decision mechanism

  uint64_t selfNs() const { return DurNs > ChildNs ? DurNs - ChildNs : 0; }
};

/// A single-writer event buffer, one per OmegaContext that traces. All
/// recording methods must be called from the one thread owning the
/// context; no synchronization happens on this path.
class TraceBuffer {
public:
  TraceBuffer(std::string TrackName, const OmegaStats *Stats,
              uint64_t DefaultTaskKey,
              std::chrono::steady_clock::time_point Epoch)
      : Name(std::move(TrackName)), Stats(Stats), Epoch(Epoch),
        CurTask(DefaultTaskKey), DefaultTask(DefaultTaskKey) {}

  /// Events recorded by this thread through any TraceBuffer since thread
  /// start. Tests diff it around an operation to prove that a disabled
  /// tracer records nothing (the SmallCoeffVector spill-counter trick).
  static uint64_t &eventsRecordedThisThread() {
    thread_local uint64_t Count = 0;
    return Count;
  }

  const std::string &trackName() const { return Name; }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Opens a span; returns its event index for endSpan(). Depth is the
  /// number of currently open spans in this buffer.
  unsigned beginSpan(SpanKind K, uint32_t Vars = 0, uint32_t Rows = 0) {
    unsigned Idx = static_cast<unsigned>(Events.size());
    ++eventsRecordedThisThread();
    TraceEvent &E = Events.emplace_back();
    E.Kind = K;
    E.Vars = Vars;
    E.Rows = Rows;
    E.Depth = static_cast<uint16_t>(Open.size());
    E.TaskKey = CurTask;
    E.Seq = NextSeq++;
    E.StartNs = nowNs();
    Open.push_back({Idx, Stats ? *Stats : OmegaStats()});
    return Idx;
  }

  void endSpan(unsigned Idx) {
    assert(!Open.empty() && Open.back().EventIdx == Idx &&
           "spans must close in LIFO order");
    TraceEvent &E = Events[Idx];
    E.DurNs = nowNs() - E.StartNs;
    if (Stats) {
      E.Delta = *Stats;
      E.Delta.subtract(Open.back().StatsAtBegin);
    }
    Open.pop_back();
    if (!Open.empty())
      Events[Open.back().EventIdx].ChildNs += E.DurNs;
  }

  void setCache(unsigned Idx, CacheTag T) { Events[Idx].Cache = T; }
  void setLabel(unsigned Idx, std::string L) {
    Events[Idx].Label = std::move(L);
  }

  /// Records an instant decision event ("dark-shadow: satisfiable",
  /// "killed by cover", ...) attributed to the current task.
  void decision(std::string Mechanism, uint32_t Vars = 0, uint32_t Rows = 0) {
    ++eventsRecordedThisThread();
    TraceEvent &E = Events.emplace_back();
    E.Kind = SpanKind::Decision;
    E.Vars = Vars;
    E.Rows = Rows;
    E.Depth = static_cast<uint16_t>(Open.size());
    E.TaskKey = CurTask;
    E.Seq = NextSeq++;
    E.StartNs = nowNs();
    E.Label = std::move(Mechanism);
  }

  /// Enters work item \p Key: subsequent events carry it and restart the
  /// sequence counter, which is what makes the merged order independent of
  /// which worker claimed the task. Returns the previous (key, seq) for
  /// endTask().
  std::pair<uint64_t, uint32_t> beginTask(uint64_t Key) {
    auto Prev = std::make_pair(CurTask, NextSeq);
    CurTask = Key;
    NextSeq = 0;
    return Prev;
  }
  void endTask(std::pair<uint64_t, uint32_t> Prev) {
    CurTask = Prev.first;
    NextSeq = Prev.second;
  }

private:
  friend class Tracer;

  struct OpenSpan {
    unsigned EventIdx;
    OmegaStats StatsAtBegin;
  };

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  std::string Name;
  const OmegaStats *Stats;
  std::chrono::steady_clock::time_point Epoch;
  std::vector<TraceEvent> Events;
  std::vector<OpenSpan> Open;
  uint64_t CurTask;
  uint64_t DefaultTask;
  uint32_t NextSeq = 0;
};

/// Aggregated per-kind profile row (built by Tracer::profile()).
struct ProfilePhase {
  SpanKind Kind;
  uint64_t Calls = 0;
  double SelfMs = 0;  ///< duration minus direct children
  double InclMs = 0;  ///< full span duration
};

/// Figure-6-style classification of the satisfiability queries, derived
/// from the per-span counter deltas. CacheHit + Exact + General +
/// Splintered always equals the merged SatisfiabilityCalls counter.
struct QueryClasses {
  uint64_t CacheHit = 0;   ///< answered by the QueryCache
  uint64_t Exact = 0;      ///< only exact eliminations (no Omega "general test")
  uint64_t General = 0;    ///< inexact elimination, shadows decided
  uint64_t Splintered = 0; ///< had to explore splinters
  uint64_t total() const { return CacheHit + Exact + General + Splintered; }
};

struct ProfileData {
  std::vector<ProfilePhase> Phases; ///< only kinds with at least one span
  QueryClasses Classes;
  OmegaStats Stats; ///< summed per-span deltas of top-level spans
};

/// Owns the trace buffers of one run and renders the three sinks. Buffer
/// registration is mutex-guarded (workers register once at pool
/// construction); everything else assumes recording has quiesced.
class Tracer {
public:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Creates a buffer whose spans snapshot \p Stats (the owning context's
  /// counters) for per-span deltas. Events recorded outside any engine
  /// task sort after all task events, grouped by registration order.
  TraceBuffer &registerBuffer(std::string TrackName, const OmegaStats *Stats);

  /// Every event of every buffer in deterministic order: sorted by
  /// (TaskKey, Seq). Task keys are assigned in the engine's serial
  /// enumeration order, so the result is identical for every worker
  /// count; ties cannot occur because one task runs on exactly one worker.
  std::vector<TraceEvent> mergedEvents() const;

  /// Sink 1: Chrome trace_event JSON (chrome://tracing, Perfetto). One
  /// track (tid) per registered buffer, named after it.
  std::string chromeTraceJson() const;

  /// Sink 2 input: aggregated per-phase times, query classification and
  /// summed counters.
  ProfileData profile() const;

  /// Sink 2: the profile as a text table or a JSON object. \p WallMs < 0
  /// omits the wall-time field.
  std::string profileReport(bool Json, double WallMs = -1,
                            unsigned Jobs = 1) const;

  /// Sink 3: the explain log -- one block per engine work item, listing
  /// the deciding mechanisms and the problem sizes involved.
  std::string explainLog() const;

private:
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
};

//===----------------------------------------------------------------------===//
// Zero-overhead instrumentation helpers
//===----------------------------------------------------------------------===//

/// RAII span: a no-op (one null check, nothing recorded, nothing
/// allocated) when \p B is null.
class ScopedSpan {
public:
  ScopedSpan(TraceBuffer *B, SpanKind K, uint32_t Vars = 0, uint32_t Rows = 0)
      : B(B) {
    if (B)
      Idx = B->beginSpan(K, Vars, Rows);
  }
  ~ScopedSpan() {
    if (B)
      B->endSpan(Idx);
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  void cache(CacheTag T) {
    if (B)
      B->setCache(Idx, T);
  }
  void label(const char *L) {
    if (B)
      B->setLabel(Idx, L);
  }

private:
  TraceBuffer *B;
  unsigned Idx = 0;
};

/// RAII work-item scope: tags everything recorded inside with \p Key and
/// wraps it in an EngineTask span labelled \p Label.
class TaskScope {
public:
  TaskScope(TraceBuffer *B, uint64_t Key, std::string Label) : B(B) {
    if (B) {
      Prev = B->beginTask(Key);
      Idx = B->beginSpan(SpanKind::EngineTask);
      B->setLabel(Idx, std::move(Label));
    }
  }
  ~TaskScope() {
    if (B) {
      B->endSpan(Idx);
      B->endTask(Prev);
    }
  }

  TaskScope(const TaskScope &) = delete;
  TaskScope &operator=(const TaskScope &) = delete;

private:
  TraceBuffer *B;
  unsigned Idx = 0;
  std::pair<uint64_t, uint32_t> Prev;
};

} // namespace obs
} // namespace omega

#endif // OMEGA_OBS_TRACE_H
