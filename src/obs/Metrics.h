//===- obs/Metrics.h - Production metrics for the serving stack ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry for long-running processes (omega-serve), in
/// the same spirit Figure 6 of the paper accounts for the analyzer's work:
/// counters that sum exactly, not sampled estimates. Three instrument
/// kinds:
///
///  * Counter   -- monotonic, add-only (requests, cache hits);
///  * Gauge     -- a signed level that moves both ways (queue depth);
///  * Histogram -- fixed boundaries chosen at registration, exact integer
///    bucket counts (no decay, no approximation), plus an exact sum.
///
/// Registration happens once, at startup, and may allocate; after that
/// the recording path is allocation-free and lock-free. Every instrument
/// is sharded over cache-line-padded atomic cells indexed by a per-thread
/// shard id, so concurrent workers never contend on one line; add() and
/// observe() are a few relaxed fetch_adds. Snapshots sum the shards in
/// registration order, which makes two snapshots of equal registries
/// field-for-field comparable and merge() well defined.
///
/// The disabled path mirrors obs/Trace.h: instrumentation sites hold
/// nullable pointers and the inc()/observe()/set() helpers are one null
/// check -- nothing recorded, nothing allocated. MetricsTest pins this
/// down with samplesRecordedThisThread(), the same thread-local-counter
/// trick TraceBuffer uses for its zero-event property.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_OBS_METRICS_H
#define OMEGA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace omega {
namespace obs {

/// Concurrency shards per instrument. A small power of two: enough that
/// a handful of server workers land on distinct cells, cheap to sum.
constexpr unsigned MetricShards = 8;

namespace detail {

/// One cache-line-padded atomic cell (the unit of sharding).
struct alignas(64) MetricCell {
  std::atomic<uint64_t> V{0};
};

/// The calling thread's shard index, assigned round-robin on first use.
unsigned threadShard();

/// Samples recorded by this thread through any instrument since thread
/// start. Tests diff it around an operation to prove the disabled path
/// records nothing (the TraceBuffer::eventsRecordedThisThread() trick).
inline uint64_t &samplesRecordedThisThread() {
  thread_local uint64_t Count = 0;
  return Count;
}

} // namespace detail

/// Monotonic counter. add() is allocation-free and wait-free.
class Counter {
public:
  void add(uint64_t N = 1) noexcept {
    ++detail::samplesRecordedThisThread();
    Cells[detail::threadShard()].V.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const detail::MetricCell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }
  /// Zeroes every cell. Not atomic with respect to concurrent add()s: a
  /// racing increment lands before or after the reset, never torn. Meant
  /// for quiescent test rigs via {"op":"metrics","reset":true}.
  void reset() noexcept {
    for (detail::MetricCell &C : Cells)
      C.V.store(0, std::memory_order_relaxed);
  }
  const std::string &name() const { return Name; }

private:
  friend class MetricsRegistry;
  Counter(std::string Name, std::string Help)
      : Name(std::move(Name)), Help(std::move(Help)) {}

  std::string Name, Help;
  detail::MetricCell Cells[MetricShards];
};

/// A signed level. Sharded like Counter: each thread adjusts its own cell
/// and value() sums them, so set() from one owner thread or add()/sub()
/// from many both work.
class Gauge {
public:
  void add(int64_t N) noexcept {
    ++detail::samplesRecordedThisThread();
    Cells[detail::threadShard()].V.fetch_add(static_cast<uint64_t>(N),
                                             std::memory_order_relaxed);
  }
  void sub(int64_t N) noexcept { add(-N); }
  /// Sets the summed value to \p V by adjusting the caller's cell. Callers
  /// that race set() see *a* consistent level, not a torn one.
  void set(int64_t V) noexcept { add(V - value()); }
  int64_t value() const {
    uint64_t Sum = 0;
    for (const detail::MetricCell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return static_cast<int64_t>(Sum);
  }
  const std::string &name() const { return Name; }

private:
  friend class MetricsRegistry;
  Gauge(std::string Name, std::string Help)
      : Name(std::move(Name)), Help(std::move(Help)) {}

  std::string Name, Help;
  detail::MetricCell Cells[MetricShards];
};

/// Fixed-boundary histogram with exact integer bucket counts. Boundaries
/// are inclusive upper bounds in the instrument's unit (the serving stack
/// records microseconds); one implicit overflow bucket catches the rest.
/// observe() is allocation-free: a linear scan over the (small, fixed)
/// boundary array plus two relaxed fetch_adds.
class Histogram {
public:
  void observe(uint64_t V) noexcept {
    ++detail::samplesRecordedThisThread();
    unsigned B = 0;
    while (B != Bounds.size() && V > Bounds[B])
      ++B;
    unsigned Shard = detail::threadShard();
    BucketCells[B * MetricShards + Shard].V.fetch_add(
        1, std::memory_order_relaxed);
    SumCells[Shard].V.fetch_add(V, std::memory_order_relaxed);
  }
  const std::vector<uint64_t> &bounds() const { return Bounds; }
  /// Exact count of observations in bucket \p B (B == bounds().size() is
  /// the overflow bucket).
  uint64_t bucketCount(unsigned B) const {
    uint64_t Sum = 0;
    for (unsigned S = 0; S != MetricShards; ++S)
      Sum += BucketCells[B * MetricShards + S].V.load(
          std::memory_order_relaxed);
    return Sum;
  }
  uint64_t count() const {
    uint64_t Sum = 0;
    for (unsigned B = 0; B != Bounds.size() + 1; ++B)
      Sum += bucketCount(B);
    return Sum;
  }
  uint64_t sum() const {
    uint64_t Sum = 0;
    for (const detail::MetricCell &C : SumCells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }
  /// Zeroes every bucket and the sum; same caveats as Counter::reset().
  void reset() noexcept {
    for (unsigned B = 0; B != (unsigned)(Bounds.size() + 1) * MetricShards;
         ++B)
      BucketCells[B].V.store(0, std::memory_order_relaxed);
    for (detail::MetricCell &C : SumCells)
      C.V.store(0, std::memory_order_relaxed);
  }
  const std::string &name() const { return Name; }

private:
  friend class MetricsRegistry;
  Histogram(std::string Name, std::string Help, std::vector<uint64_t> Bounds)
      : Name(std::move(Name)), Help(std::move(Help)),
        Bounds(std::move(Bounds)),
        BucketCells(std::make_unique<detail::MetricCell[]>(
            (this->Bounds.size() + 1) * MetricShards)) {}

  std::string Name, Help;
  std::vector<uint64_t> Bounds;
  std::unique_ptr<detail::MetricCell[]> BucketCells;
  detail::MetricCell SumCells[MetricShards];
};

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

/// A point-in-time copy of every instrument, in registration order.
/// Deterministic in shape: two snapshots of the same registry (or of two
/// registries registered identically) line up instrument for instrument.
struct MetricsSnapshot {
  struct CounterView {
    std::string Name, Help;
    uint64_t Value = 0;
  };
  struct GaugeView {
    std::string Name, Help;
    int64_t Value = 0;
  };
  struct HistogramView {
    std::string Name, Help;
    std::vector<uint64_t> Bounds;  ///< inclusive upper bounds
    std::vector<uint64_t> Buckets; ///< Bounds.size() + 1 exact counts
    uint64_t Count = 0;
    uint64_t Sum = 0;
  };

  std::vector<CounterView> Counters;
  std::vector<GaugeView> Gauges;
  std::vector<HistogramView> Histograms;

  /// Adds \p Other into this snapshot instrument-by-instrument. Both must
  /// come from identically registered registries (same names, same order,
  /// same boundaries); returns false (leaving this unchanged) otherwise.
  bool merge(const MetricsSnapshot &Other);

  const CounterView *counter(const std::string &Name) const;
  const GaugeView *gauge(const std::string &Name) const;
  const HistogramView *histogram(const std::string &Name) const;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Owns the instruments of one process. Registration (allocating) happens
/// up front; instruments are stable pointers for the registry's lifetime,
/// so hot paths hold Counter*/Gauge*/Histogram* and never look anything
/// up. snapshot() may run concurrently with recording -- it reads relaxed
/// atomics -- and yields values at least as fresh as every write that
/// happened-before the call.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Registers one instrument. Names must be unique across the registry
  /// and follow Prometheus spelling ([a-z_][a-z0-9_]*); counters should
  /// end in "_total". Returns a pointer stable for the registry lifetime.
  Counter *counter(std::string Name, std::string Help);
  Gauge *gauge(std::string Name, std::string Help);
  /// \p Bounds must be strictly increasing; an overflow bucket is implied.
  Histogram *histogram(std::string Name, std::string Help,
                       std::vector<uint64_t> Bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter and histogram; gauges are levels (queue depth,
  /// live sessions) and are left alone -- their owners keep set()ing
  /// them. Not a barrier: increments racing the reset land wholly before
  /// or after it. Backs {"op":"metrics","reset":true}, which is meant
  /// for per-window measurement on otherwise quiescent rigs; note that
  /// cross-source invariants against non-registry totals (the shared
  /// cache's global counters) only hold over a full process lifetime.
  void reset();

private:
  std::vector<std::unique_ptr<Counter>> CounterList;
  std::vector<std::unique_ptr<Gauge>> GaugeList;
  std::vector<std::unique_ptr<Histogram>> HistogramList;
};

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

/// Prometheus text exposition (format version 0.0.4): # HELP / # TYPE
/// comments, flat sample lines, histogram _bucket{le=...}/_sum/_count
/// series with le rendered in seconds from the microsecond bounds.
std::string prometheusText(const MetricsSnapshot &S);

/// One-line JSON rendering of the snapshot: {"counters": {...},
/// "gauges": {...}, "histograms": {name: {"boundsUs": [...], "buckets":
/// [...], "count": N, "sumUs": N}}}. String-built like api/Response.h so
/// the bytes are reproducible.
std::string metricsJson(const MetricsSnapshot &S);

//===----------------------------------------------------------------------===//
// Zero-overhead instrumentation helpers (the disabled path)
//===----------------------------------------------------------------------===//

inline void inc(Counter *C, uint64_t N = 1) noexcept {
  if (C)
    C->add(N);
}
inline void observe(Histogram *H, uint64_t V) noexcept {
  if (H)
    H->observe(V);
}
inline void set(Gauge *G, int64_t V) noexcept {
  if (G)
    G->set(V);
}
inline void add(Gauge *G, int64_t N) noexcept {
  if (G)
    G->add(N);
}

} // namespace obs
} // namespace omega

#endif // OMEGA_OBS_METRICS_H
