//===- obs/Trace.cpp - Trace merge and the three sinks --------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace omega;
using namespace omega::obs;

const char *obs::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Sat:
    return "sat";
  case SpanKind::Projection:
    return "projection";
  case SpanKind::Gist:
    return "gist";
  case SpanKind::FMEliminate:
    return "fm-eliminate";
  case SpanKind::Splinter:
    return "splinter";
  case SpanKind::EqSolve:
    return "eq-solve";
  case SpanKind::Kill:
    return "kill";
  case SpanKind::Cover:
    return "cover";
  case SpanKind::Refine:
    return "refine";
  case SpanKind::SnapshotBuild:
    return "snapshot-build";
  case SpanKind::QuickTest:
    return "quick-test";
  case SpanKind::EngineTask:
    return "engine-task";
  case SpanKind::Decision:
    return "decision";
  case SpanKind::NumKinds:
    break;
  }
  return "?";
}

TraceBuffer &Tracer::registerBuffer(std::string TrackName,
                                    const OmegaStats *Stats) {
  std::lock_guard<std::mutex> Lock(M);
  // Events recorded outside any engine task (calculator queries, the
  // engine's serial sections) sort after all task-keyed events, grouped by
  // registration order.
  uint64_t DefaultKey = (0xFFull << 56) | Buffers.size();
  Buffers.push_back(std::make_unique<TraceBuffer>(std::move(TrackName), Stats,
                                                  DefaultKey, Epoch));
  return *Buffers.back();
}

std::vector<TraceEvent> Tracer::mergedEvents() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<TraceEvent> All;
  std::size_t N = 0;
  for (const auto &B : Buffers)
    N += B->events().size();
  All.reserve(N);
  for (const auto &B : Buffers)
    All.insert(All.end(), B->events().begin(), B->events().end());
  // One task runs on exactly one worker and Seq restarts per task, so
  // (TaskKey, Seq) is a total order independent of worker assignment.
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.TaskKey != B.TaskKey)
                       return A.TaskKey < B.TaskKey;
                     return A.Seq < B.Seq;
                   });
  return All;
}

//===----------------------------------------------------------------------===//
// Sink 1: Chrome trace_event JSON
//===----------------------------------------------------------------------===//

namespace {

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendF(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

} // namespace

std::string Tracer::chromeTraceJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };

  Sep();
  Out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"omega\"}}";
  for (std::size_t I = 0; I != Buffers.size(); ++I) {
    Sep();
    appendF(Out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"",
            I + 1);
    appendJsonEscaped(Out, Buffers[I]->trackName());
    Out += "\"}}";
  }

  for (std::size_t I = 0; I != Buffers.size(); ++I) {
    for (const TraceEvent &E : Buffers[I]->events()) {
      Sep();
      bool Instant = E.Kind == SpanKind::Decision;
      appendF(Out, "{\"name\":\"");
      if (Instant)
        appendJsonEscaped(Out, E.Label.empty() ? "decision" : E.Label);
      else
        Out += spanKindName(E.Kind);
      appendF(Out,
              "\",\"cat\":\"omega\",\"ph\":\"%s\",\"pid\":1,\"tid\":%zu,"
              "\"ts\":%.3f",
              Instant ? "i" : "X", I + 1, E.StartNs / 1000.0);
      if (Instant)
        Out += ",\"s\":\"t\"";
      else
        appendF(Out, ",\"dur\":%.3f", E.DurNs / 1000.0);
      appendF(Out, ",\"args\":{\"vars\":%u,\"rows\":%u", E.Vars, E.Rows);
      if (E.Cache != CacheTag::None)
        appendF(Out, ",\"cache\":\"%s\"",
                E.Cache == CacheTag::Hit ? "hit" : "miss");
      if (!Instant && !E.Label.empty()) {
        Out += ",\"label\":\"";
        appendJsonEscaped(Out, E.Label);
        Out += "\"";
      }
      Out += "}}";
    }
  }
  Out += "\n]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Sink 2: aggregated profile
//===----------------------------------------------------------------------===//

ProfileData Tracer::profile() const {
  std::lock_guard<std::mutex> Lock(M);
  ProfileData P;
  ProfilePhase Rows[static_cast<unsigned>(SpanKind::NumKinds)];
  for (unsigned K = 0; K != static_cast<unsigned>(SpanKind::NumKinds); ++K)
    Rows[K].Kind = static_cast<SpanKind>(K);

  for (const auto &B : Buffers) {
    const std::vector<TraceEvent> &Events = B->events();

    // Reconstruct nesting from recorded depths: for each span, its *own*
    // counter delta is the recorded delta minus the deltas of its direct
    // children. Sat spans are classified by their own delta, so a query
    // whose nested gist-sat-test splintered is not itself "splintered".
    std::vector<OmegaStats> Own(Events.size());
    std::vector<std::size_t> Stack; // indices of open ancestors
    for (std::size_t I = 0; I != Events.size(); ++I) {
      const TraceEvent &E = Events[I];
      if (E.Kind == SpanKind::Decision)
        continue;
      while (!Stack.empty() && Events[Stack.back()].Depth >= E.Depth)
        Stack.pop_back();
      Own[I] = E.Delta;
      if (!Stack.empty())
        Own[Stack.back()].subtract(E.Delta);
      Stack.push_back(I);
    }

    for (std::size_t I = 0; I != Events.size(); ++I) {
      const TraceEvent &E = Events[I];
      if (E.Kind == SpanKind::Decision)
        continue;
      ProfilePhase &R = Rows[static_cast<unsigned>(E.Kind)];
      ++R.Calls;
      R.SelfMs += E.selfNs() / 1e6;
      R.InclMs += E.DurNs / 1e6;
      if (E.Depth == 0)
        P.Stats.merge(E.Delta);
      if (E.Kind == SpanKind::Sat) {
        if (E.Cache == CacheTag::Hit)
          ++P.Classes.CacheHit;
        else if (Own[I].SplintersExplored > 0)
          ++P.Classes.Splintered;
        else if (Own[I].InexactEliminations > 0)
          ++P.Classes.General;
        else
          ++P.Classes.Exact;
      }
    }
  }

  for (const ProfilePhase &R : Rows)
    if (R.Calls != 0)
      P.Phases.push_back(R);
  return P;
}

std::string Tracer::profileReport(bool Json, double WallMs,
                                  unsigned Jobs) const {
  ProfileData P = profile();
  const OmegaStats &S = P.Stats;
  std::string Out;

  if (Json) {
    Out += "{\n  \"schema\": 1";
    if (WallMs >= 0)
      appendF(Out, ",\n  \"wall_ms\": %.3f", WallMs);
    appendF(Out, ",\n  \"jobs\": %u", Jobs);
    Out += ",\n  \"phases\": [";
    for (std::size_t I = 0; I != P.Phases.size(); ++I) {
      const ProfilePhase &R = P.Phases[I];
      appendF(Out,
              "%s\n    {\"name\": \"%s\", \"calls\": %" PRIu64
              ", \"self_ms\": %.3f, \"incl_ms\": %.3f}",
              I ? "," : "", spanKindName(R.Kind), R.Calls, R.SelfMs, R.InclMs);
    }
    Out += "\n  ]";
    appendF(Out,
            ",\n  \"classes\": {\"cache_hit\": %" PRIu64 ", \"exact\": %" PRIu64
            ", \"general\": %" PRIu64 ", \"splintered\": %" PRIu64
            ", \"total\": %" PRIu64 "}",
            P.Classes.CacheHit, P.Classes.Exact, P.Classes.General,
            P.Classes.Splintered, P.Classes.total());
    Out += ",\n  \"stats\": {";
    struct {
      const char *Name;
      uint64_t V;
    } Fields[] = {
        {"sat_calls", S.SatisfiabilityCalls},
        {"projection_calls", S.ProjectionCalls},
        {"gist_calls", S.GistCalls},
        {"exact_eliminations", S.ExactEliminations},
        {"inexact_eliminations", S.InexactEliminations},
        {"splinters_explored", S.SplintersExplored},
        {"dark_shadow_decided", S.DarkShadowDecided},
        {"real_shadow_decided", S.RealShadowDecided},
        {"mod_hat_substitutions", S.ModHatSubstitutions},
        {"gist_fast_drops", S.GistFastDrops},
        {"gist_fast_keeps", S.GistFastKeeps},
        {"gist_sat_tests", S.GistSatTests},
        {"sat_cache_hits", S.SatCacheHits},
        {"sat_cache_misses", S.SatCacheMisses},
        {"gist_cache_hits", S.GistCacheHits},
        {"gist_cache_misses", S.GistCacheMisses},
        {"snapshot_builds", S.SnapshotBuilds},
        {"snapshot_reuses", S.SnapshotReuses},
        {"snapshot_fallbacks", S.SnapshotFallbacks},
        {"quicktest_ziv", S.QuickTestZIV},
        {"quicktest_gcd", S.QuickTestGCD},
        {"quicktest_bounds", S.QuickTestBounds},
        {"quicktest_trivial_dep", S.QuickTestTrivialDep},
        {"quicktest_decided", S.QuickTestDecided},
    };
    for (std::size_t I = 0; I != sizeof(Fields) / sizeof(Fields[0]); ++I)
      appendF(Out, "%s\n    \"%s\": %" PRIu64, I ? "," : "", Fields[I].Name,
              Fields[I].V);
    Out += "\n  }\n}\n";
    return Out;
  }

  Out += "== Omega profile ==\n";
  if (WallMs >= 0)
    appendF(Out, "wall time: %.3f ms, jobs: %u\n", WallMs, Jobs);
  appendF(Out, "%-14s %10s %12s %12s\n", "phase", "calls", "self ms",
          "incl ms");
  for (const ProfilePhase &R : P.Phases)
    appendF(Out, "%-14s %10" PRIu64 " %12.3f %12.3f\n", spanKindName(R.Kind),
            R.Calls, R.SelfMs, R.InclMs);

  uint64_t SatLookups = S.SatCacheHits + S.SatCacheMisses;
  uint64_t GistLookups = S.GistCacheHits + S.GistCacheMisses;
  appendF(Out, "cache: sat %" PRIu64 "/%" PRIu64 " hits", S.SatCacheHits,
          SatLookups);
  if (SatLookups)
    appendF(Out, " (%.1f%%)", 100.0 * S.SatCacheHits / SatLookups);
  appendF(Out, ", gist %" PRIu64 "/%" PRIu64 " hits", S.GistCacheHits,
          GistLookups);
  if (GistLookups)
    appendF(Out, " (%.1f%%)", 100.0 * S.GistCacheHits / GistLookups);
  Out += "\n";
  appendF(Out,
          "query classes (Figure 6 style): cache-hit %" PRIu64
          ", exact %" PRIu64 ", general %" PRIu64 ", splintered %" PRIu64
          ", total %" PRIu64 " (sat_calls %" PRIu64 ")\n",
          P.Classes.CacheHit, P.Classes.Exact, P.Classes.General,
          P.Classes.Splintered, P.Classes.total(), S.SatisfiabilityCalls);
  appendF(Out,
          "pair tiers: quick-test decided %" PRIu64 " (ziv %" PRIu64
          ", gcd %" PRIu64 ", bounds %" PRIu64 ", trivial %" PRIu64
          "), snapshot reuses %" PRIu64 " / builds %" PRIu64
          " (fallbacks %" PRIu64 ")\n",
          S.QuickTestDecided, S.QuickTestZIV, S.QuickTestGCD, S.QuickTestBounds,
          S.QuickTestTrivialDep, S.SnapshotReuses, S.SnapshotBuilds,
          S.SnapshotFallbacks);
  return Out;
}

//===----------------------------------------------------------------------===//
// Sink 3: explain log
//===----------------------------------------------------------------------===//

std::string Tracer::explainLog() const {
  std::vector<TraceEvent> All = mergedEvents();
  std::string Out;

  std::size_t I = 0;
  while (I != All.size()) {
    uint64_t Key = All[I].TaskKey;
    std::size_t End = I;
    while (End != All.size() && All[End].TaskKey == Key)
      ++End;

    // Header: the work item's label (from its EngineTask span), or a
    // generic banner for events recorded outside any task.
    const std::string *Label = nullptr;
    for (std::size_t J = I; J != End; ++J)
      if (All[J].Kind == SpanKind::EngineTask && !All[J].Label.empty()) {
        Label = &All[J].Label;
        break;
      }

    std::string Block;
    for (std::size_t J = I; J != End; ++J) {
      const TraceEvent &E = All[J];
      if (E.Kind == SpanKind::Decision) {
        Block += "  ";
        Block += E.Label;
      } else if (E.Cache == CacheTag::Hit) {
        Block += "  ";
        Block += spanKindName(E.Kind);
        Block += ": cache hit";
      } else {
        continue;
      }
      if (E.Vars || E.Rows)
        appendF(Block, " (vars=%u rows=%u)", E.Vars, E.Rows);
      Block += "\n";
    }
    if (!Block.empty()) {
      if (Label)
        Out += *Label;
      else if ((Key >> 56) == 0xFF)
        Out += "(outside engine tasks)";
      else
        appendF(Out, "task %" PRIu64, Key);
      Out += ":\n";
      Out += Block;
    }
    I = End;
  }
  if (Out.empty())
    Out = "(no decisions recorded)\n";
  return Out;
}
