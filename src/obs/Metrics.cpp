//===- obs/Metrics.cpp - Production metrics for the serving stack --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace omega {
namespace obs {

namespace detail {

unsigned threadShard() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Shard =
      Next.fetch_add(1, std::memory_order_relaxed) % MetricShards;
  return Shard;
}

} // namespace detail

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

bool MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  if (Counters.size() != Other.Counters.size() ||
      Gauges.size() != Other.Gauges.size() ||
      Histograms.size() != Other.Histograms.size())
    return false;
  for (std::size_t I = 0; I != Counters.size(); ++I)
    if (Counters[I].Name != Other.Counters[I].Name)
      return false;
  for (std::size_t I = 0; I != Gauges.size(); ++I)
    if (Gauges[I].Name != Other.Gauges[I].Name)
      return false;
  for (std::size_t I = 0; I != Histograms.size(); ++I)
    if (Histograms[I].Name != Other.Histograms[I].Name ||
        Histograms[I].Bounds != Other.Histograms[I].Bounds)
      return false;

  for (std::size_t I = 0; I != Counters.size(); ++I)
    Counters[I].Value += Other.Counters[I].Value;
  for (std::size_t I = 0; I != Gauges.size(); ++I)
    Gauges[I].Value += Other.Gauges[I].Value;
  for (std::size_t I = 0; I != Histograms.size(); ++I) {
    HistogramView &H = Histograms[I];
    const HistogramView &O = Other.Histograms[I];
    for (std::size_t B = 0; B != H.Buckets.size(); ++B)
      H.Buckets[B] += O.Buckets[B];
    H.Count += O.Count;
    H.Sum += O.Sum;
  }
  return true;
}

const MetricsSnapshot::CounterView *
MetricsSnapshot::counter(const std::string &Name) const {
  for (const CounterView &C : Counters)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

const MetricsSnapshot::GaugeView *
MetricsSnapshot::gauge(const std::string &Name) const {
  for (const GaugeView &G : Gauges)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const MetricsSnapshot::HistogramView *
MetricsSnapshot::histogram(const std::string &Name) const {
  for (const HistogramView &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter *MetricsRegistry::counter(std::string Name, std::string Help) {
  CounterList.emplace_back(
      new Counter(std::move(Name), std::move(Help)));
  return CounterList.back().get();
}

Gauge *MetricsRegistry::gauge(std::string Name, std::string Help) {
  GaugeList.emplace_back(new Gauge(std::move(Name), std::move(Help)));
  return GaugeList.back().get();
}

Histogram *MetricsRegistry::histogram(std::string Name, std::string Help,
                                      std::vector<uint64_t> Bounds) {
  for (std::size_t I = 1; I < Bounds.size(); ++I)
    assert(Bounds[I - 1] < Bounds[I] &&
           "histogram boundaries must be strictly increasing");
  HistogramList.emplace_back(
      new Histogram(std::move(Name), std::move(Help), std::move(Bounds)));
  return HistogramList.back().get();
}

void MetricsRegistry::reset() {
  for (const std::unique_ptr<Counter> &C : CounterList)
    C->reset();
  for (const std::unique_ptr<Histogram> &H : HistogramList)
    H->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot S;
  S.Counters.reserve(CounterList.size());
  for (const std::unique_ptr<Counter> &C : CounterList)
    S.Counters.push_back({C->Name, C->Help, C->value()});
  S.Gauges.reserve(GaugeList.size());
  for (const std::unique_ptr<Gauge> &G : GaugeList)
    S.Gauges.push_back({G->Name, G->Help, G->value()});
  S.Histograms.reserve(HistogramList.size());
  for (const std::unique_ptr<Histogram> &H : HistogramList) {
    MetricsSnapshot::HistogramView V;
    V.Name = H->Name;
    V.Help = H->Help;
    V.Bounds = H->Bounds;
    V.Buckets.reserve(H->Bounds.size() + 1);
    for (unsigned B = 0; B != H->Bounds.size() + 1; ++B)
      V.Buckets.push_back(H->bucketCount(B));
    for (uint64_t N : V.Buckets)
      V.Count += N;
    V.Sum = H->sum();
    S.Histograms.push_back(std::move(V));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

namespace {

/// Renders a microsecond bound as seconds with no trailing zeros
/// ("0.001", "0.25", "1"), the spelling Prometheus uses for le labels.
std::string secondsLabel(uint64_t Micros) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", static_cast<double>(Micros) / 1e6);
  std::string S(Buf);
  while (!S.empty() && S.back() == '0')
    S.pop_back();
  if (!S.empty() && S.back() == '.')
    S.pop_back();
  return S;
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void appendI64(std::string &Out, int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
}

} // namespace

std::string prometheusText(const MetricsSnapshot &S) {
  std::string Out;
  for (const MetricsSnapshot::CounterView &C : S.Counters) {
    Out += "# HELP " + C.Name + " " + C.Help + "\n";
    Out += "# TYPE " + C.Name + " counter\n";
    Out += C.Name + " ";
    appendU64(Out, C.Value);
    Out += "\n";
  }
  for (const MetricsSnapshot::GaugeView &G : S.Gauges) {
    Out += "# HELP " + G.Name + " " + G.Help + "\n";
    Out += "# TYPE " + G.Name + " gauge\n";
    Out += G.Name + " ";
    appendI64(Out, G.Value);
    Out += "\n";
  }
  for (const MetricsSnapshot::HistogramView &H : S.Histograms) {
    Out += "# HELP " + H.Name + " " + H.Help + "\n";
    Out += "# TYPE " + H.Name + " histogram\n";
    uint64_t Cum = 0;
    for (std::size_t B = 0; B != H.Bounds.size(); ++B) {
      Cum += H.Buckets[B];
      Out += H.Name + "_bucket{le=\"" + secondsLabel(H.Bounds[B]) + "\"} ";
      appendU64(Out, Cum);
      Out += "\n";
    }
    Out += H.Name + "_bucket{le=\"+Inf\"} ";
    appendU64(Out, H.Count);
    Out += "\n";
    Out += H.Name + "_sum " + secondsLabel(H.Sum) + "\n";
    Out += H.Name + "_count ";
    appendU64(Out, H.Count);
    Out += "\n";
  }
  return Out;
}

std::string metricsJson(const MetricsSnapshot &S) {
  std::string Out = "{\"counters\": {";
  bool First = true;
  for (const MetricsSnapshot::CounterView &C : S.Counters) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + C.Name + "\": ";
    appendU64(Out, C.Value);
  }
  Out += "}, \"gauges\": {";
  First = true;
  for (const MetricsSnapshot::GaugeView &G : S.Gauges) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + G.Name + "\": ";
    appendI64(Out, G.Value);
  }
  Out += "}, \"histograms\": {";
  First = true;
  for (const MetricsSnapshot::HistogramView &H : S.Histograms) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + H.Name + "\": {\"boundsUs\": [";
    for (std::size_t B = 0; B != H.Bounds.size(); ++B) {
      if (B)
        Out += ", ";
      appendU64(Out, H.Bounds[B]);
    }
    Out += "], \"buckets\": [";
    for (std::size_t B = 0; B != H.Buckets.size(); ++B) {
      if (B)
        Out += ", ";
      appendU64(Out, H.Buckets[B]);
    }
    Out += "], \"count\": ";
    appendU64(Out, H.Count);
    Out += ", \"sumUs\": ";
    appendU64(Out, H.Sum);
    Out += "}";
  }
  Out += "}}";
  return Out;
}

} // namespace obs
} // namespace omega
