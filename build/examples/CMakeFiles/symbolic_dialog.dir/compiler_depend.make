# Empty compiler generated dependencies file for symbolic_dialog.
# This may be replaced when dependencies are built.
