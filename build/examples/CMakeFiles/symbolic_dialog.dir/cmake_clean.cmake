file(REMOVE_RECURSE
  "CMakeFiles/symbolic_dialog.dir/symbolic_dialog.cpp.o"
  "CMakeFiles/symbolic_dialog.dir/symbolic_dialog.cpp.o.d"
  "symbolic_dialog"
  "symbolic_dialog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_dialog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
