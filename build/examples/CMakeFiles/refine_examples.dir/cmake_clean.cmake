file(REMOVE_RECURSE
  "CMakeFiles/refine_examples.dir/refine_examples.cpp.o"
  "CMakeFiles/refine_examples.dir/refine_examples.cpp.o.d"
  "refine_examples"
  "refine_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
