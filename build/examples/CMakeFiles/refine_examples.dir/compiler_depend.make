# Empty compiler generated dependencies file for refine_examples.
# This may be replaced when dependencies are built.
