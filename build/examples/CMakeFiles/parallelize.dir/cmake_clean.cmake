file(REMOVE_RECURSE
  "CMakeFiles/parallelize.dir/parallelize.cpp.o"
  "CMakeFiles/parallelize.dir/parallelize.cpp.o.d"
  "parallelize"
  "parallelize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
