# Empty compiler generated dependencies file for parallelize.
# This may be replaced when dependencies are built.
