file(REMOVE_RECURSE
  "CMakeFiles/cholsky_kills.dir/cholsky_kills.cpp.o"
  "CMakeFiles/cholsky_kills.dir/cholsky_kills.cpp.o.d"
  "cholsky_kills"
  "cholsky_kills.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholsky_kills.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
