# Empty dependencies file for cholsky_kills.
# This may be replaced when dependencies are built.
