# Empty compiler generated dependencies file for fig7_sorted.
# This may be replaced when dependencies are built.
