
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_sorted.cpp" "bench/CMakeFiles/fig7_sorted.dir/fig7_sorted.cpp.o" "gcc" "bench/CMakeFiles/fig7_sorted.dir/fig7_sorted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/omega_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/omega_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/omega_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/omega_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/omega_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
