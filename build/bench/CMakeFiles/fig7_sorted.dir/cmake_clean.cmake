file(REMOVE_RECURSE
  "CMakeFiles/fig7_sorted.dir/fig7_sorted.cpp.o"
  "CMakeFiles/fig7_sorted.dir/fig7_sorted.cpp.o.d"
  "fig7_sorted"
  "fig7_sorted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sorted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
