file(REMOVE_RECURSE
  "CMakeFiles/fig6_pairs.dir/fig6_pairs.cpp.o"
  "CMakeFiles/fig6_pairs.dir/fig6_pairs.cpp.o.d"
  "fig6_pairs"
  "fig6_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
