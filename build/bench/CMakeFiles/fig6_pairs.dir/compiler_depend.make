# Empty compiler generated dependencies file for fig6_pairs.
# This may be replaced when dependencies are built.
