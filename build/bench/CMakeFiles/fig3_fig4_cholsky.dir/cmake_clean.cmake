file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig4_cholsky.dir/fig3_fig4_cholsky.cpp.o"
  "CMakeFiles/fig3_fig4_cholsky.dir/fig3_fig4_cholsky.cpp.o.d"
  "fig3_fig4_cholsky"
  "fig3_fig4_cholsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig4_cholsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
