# Empty compiler generated dependencies file for fig3_fig4_cholsky.
# This may be replaced when dependencies are built.
