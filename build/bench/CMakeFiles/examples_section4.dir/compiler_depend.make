# Empty compiler generated dependencies file for examples_section4.
# This may be replaced when dependencies are built.
