file(REMOVE_RECURSE
  "CMakeFiles/examples_section4.dir/examples_section4.cpp.o"
  "CMakeFiles/examples_section4.dir/examples_section4.cpp.o.d"
  "examples_section4"
  "examples_section4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_section4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
