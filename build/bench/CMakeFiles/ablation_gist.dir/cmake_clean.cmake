file(REMOVE_RECURSE
  "CMakeFiles/ablation_gist.dir/ablation_gist.cpp.o"
  "CMakeFiles/ablation_gist.dir/ablation_gist.cpp.o.d"
  "ablation_gist"
  "ablation_gist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
