# Empty dependencies file for ablation_gist.
# This may be replaced when dependencies are built.
