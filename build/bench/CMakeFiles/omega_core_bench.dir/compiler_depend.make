# Empty compiler generated dependencies file for omega_core_bench.
# This may be replaced when dependencies are built.
