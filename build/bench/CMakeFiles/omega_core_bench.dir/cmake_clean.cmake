file(REMOVE_RECURSE
  "CMakeFiles/omega_core_bench.dir/omega_core.cpp.o"
  "CMakeFiles/omega_core_bench.dir/omega_core.cpp.o.d"
  "omega_core_bench"
  "omega_core_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_core_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
