file(REMOVE_RECURSE
  "CMakeFiles/symbolic_section5.dir/symbolic_section5.cpp.o"
  "CMakeFiles/symbolic_section5.dir/symbolic_section5.cpp.o.d"
  "symbolic_section5"
  "symbolic_section5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_section5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
