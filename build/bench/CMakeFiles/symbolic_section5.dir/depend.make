# Empty dependencies file for symbolic_section5.
# This may be replaced when dependencies are built.
