# Empty dependencies file for ablation_quicktests.
# This may be replaced when dependencies are built.
