file(REMOVE_RECURSE
  "CMakeFiles/ablation_quicktests.dir/ablation_quicktests.cpp.o"
  "CMakeFiles/ablation_quicktests.dir/ablation_quicktests.cpp.o.d"
  "ablation_quicktests"
  "ablation_quicktests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quicktests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
