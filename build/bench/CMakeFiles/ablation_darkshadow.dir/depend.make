# Empty dependencies file for ablation_darkshadow.
# This may be replaced when dependencies are built.
