file(REMOVE_RECURSE
  "CMakeFiles/ablation_darkshadow.dir/ablation_darkshadow.cpp.o"
  "CMakeFiles/ablation_darkshadow.dir/ablation_darkshadow.cpp.o.d"
  "ablation_darkshadow"
  "ablation_darkshadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_darkshadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
