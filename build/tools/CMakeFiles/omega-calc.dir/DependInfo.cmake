
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/omega_calc.cpp" "tools/CMakeFiles/omega-calc.dir/omega_calc.cpp.o" "gcc" "tools/CMakeFiles/omega-calc.dir/omega_calc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calc/CMakeFiles/omega_calc.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/omega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
