file(REMOVE_RECURSE
  "CMakeFiles/omega-calc.dir/omega_calc.cpp.o"
  "CMakeFiles/omega-calc.dir/omega_calc.cpp.o.d"
  "omega-calc"
  "omega-calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega-calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
