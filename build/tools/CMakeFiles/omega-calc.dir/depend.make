# Empty dependencies file for omega-calc.
# This may be replaced when dependencies are built.
