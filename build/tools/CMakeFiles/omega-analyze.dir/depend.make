# Empty dependencies file for omega-analyze.
# This may be replaced when dependencies are built.
