file(REMOVE_RECURSE
  "CMakeFiles/omega-analyze.dir/omega_analyze.cpp.o"
  "CMakeFiles/omega-analyze.dir/omega_analyze.cpp.o.d"
  "omega-analyze"
  "omega-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
