file(REMOVE_RECURSE
  "CMakeFiles/omega_calc.dir/Calc.cpp.o"
  "CMakeFiles/omega_calc.dir/Calc.cpp.o.d"
  "libomega_calc.a"
  "libomega_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
