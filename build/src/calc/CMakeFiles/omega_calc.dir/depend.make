# Empty dependencies file for omega_calc.
# This may be replaced when dependencies are built.
