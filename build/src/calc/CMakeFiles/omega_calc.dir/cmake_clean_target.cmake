file(REMOVE_RECURSE
  "libomega_calc.a"
)
