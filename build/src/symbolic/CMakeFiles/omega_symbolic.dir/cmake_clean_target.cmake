file(REMOVE_RECURSE
  "libomega_symbolic.a"
)
