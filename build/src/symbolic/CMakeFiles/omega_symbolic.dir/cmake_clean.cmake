file(REMOVE_RECURSE
  "CMakeFiles/omega_symbolic.dir/Induction.cpp.o"
  "CMakeFiles/omega_symbolic.dir/Induction.cpp.o.d"
  "CMakeFiles/omega_symbolic.dir/SymbolicAnalysis.cpp.o"
  "CMakeFiles/omega_symbolic.dir/SymbolicAnalysis.cpp.o.d"
  "libomega_symbolic.a"
  "libomega_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
