# Empty dependencies file for omega_symbolic.
# This may be replaced when dependencies are built.
