file(REMOVE_RECURSE
  "CMakeFiles/omega_presburger.dir/Decision.cpp.o"
  "CMakeFiles/omega_presburger.dir/Decision.cpp.o.d"
  "CMakeFiles/omega_presburger.dir/Formula.cpp.o"
  "CMakeFiles/omega_presburger.dir/Formula.cpp.o.d"
  "libomega_presburger.a"
  "libomega_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
