# Empty compiler generated dependencies file for omega_presburger.
# This may be replaced when dependencies are built.
