
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omega/EqElimination.cpp" "src/omega/CMakeFiles/omega_core.dir/EqElimination.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/EqElimination.cpp.o.d"
  "/root/repo/src/omega/FourierMotzkin.cpp" "src/omega/CMakeFiles/omega_core.dir/FourierMotzkin.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/FourierMotzkin.cpp.o.d"
  "/root/repo/src/omega/Gist.cpp" "src/omega/CMakeFiles/omega_core.dir/Gist.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/Gist.cpp.o.d"
  "/root/repo/src/omega/Problem.cpp" "src/omega/CMakeFiles/omega_core.dir/Problem.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/Problem.cpp.o.d"
  "/root/repo/src/omega/Projection.cpp" "src/omega/CMakeFiles/omega_core.dir/Projection.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/Projection.cpp.o.d"
  "/root/repo/src/omega/Satisfiability.cpp" "src/omega/CMakeFiles/omega_core.dir/Satisfiability.cpp.o" "gcc" "src/omega/CMakeFiles/omega_core.dir/Satisfiability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
