file(REMOVE_RECURSE
  "libomega_core.a"
)
