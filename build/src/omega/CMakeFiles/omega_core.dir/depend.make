# Empty dependencies file for omega_core.
# This may be replaced when dependencies are built.
