file(REMOVE_RECURSE
  "CMakeFiles/omega_core.dir/EqElimination.cpp.o"
  "CMakeFiles/omega_core.dir/EqElimination.cpp.o.d"
  "CMakeFiles/omega_core.dir/FourierMotzkin.cpp.o"
  "CMakeFiles/omega_core.dir/FourierMotzkin.cpp.o.d"
  "CMakeFiles/omega_core.dir/Gist.cpp.o"
  "CMakeFiles/omega_core.dir/Gist.cpp.o.d"
  "CMakeFiles/omega_core.dir/Problem.cpp.o"
  "CMakeFiles/omega_core.dir/Problem.cpp.o.d"
  "CMakeFiles/omega_core.dir/Projection.cpp.o"
  "CMakeFiles/omega_core.dir/Projection.cpp.o.d"
  "CMakeFiles/omega_core.dir/Satisfiability.cpp.o"
  "CMakeFiles/omega_core.dir/Satisfiability.cpp.o.d"
  "libomega_core.a"
  "libomega_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
