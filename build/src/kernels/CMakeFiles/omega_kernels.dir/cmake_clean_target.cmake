file(REMOVE_RECURSE
  "libomega_kernels.a"
)
