# Empty compiler generated dependencies file for omega_kernels.
# This may be replaced when dependencies are built.
