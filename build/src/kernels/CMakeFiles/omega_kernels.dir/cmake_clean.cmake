file(REMOVE_RECURSE
  "CMakeFiles/omega_kernels.dir/Kernels.cpp.o"
  "CMakeFiles/omega_kernels.dir/Kernels.cpp.o.d"
  "libomega_kernels.a"
  "libomega_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
