file(REMOVE_RECURSE
  "libomega_transform.a"
)
