file(REMOVE_RECURSE
  "CMakeFiles/omega_transform.dir/Apply.cpp.o"
  "CMakeFiles/omega_transform.dir/Apply.cpp.o.d"
  "libomega_transform.a"
  "libomega_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
