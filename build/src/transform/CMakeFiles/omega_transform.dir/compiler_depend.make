# Empty compiler generated dependencies file for omega_transform.
# This may be replaced when dependencies are built.
