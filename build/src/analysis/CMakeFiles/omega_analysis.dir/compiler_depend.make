# Empty compiler generated dependencies file for omega_analysis.
# This may be replaced when dependencies are built.
