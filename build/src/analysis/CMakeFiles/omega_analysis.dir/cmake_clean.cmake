file(REMOVE_RECURSE
  "CMakeFiles/omega_analysis.dir/Driver.cpp.o"
  "CMakeFiles/omega_analysis.dir/Driver.cpp.o.d"
  "CMakeFiles/omega_analysis.dir/Implication.cpp.o"
  "CMakeFiles/omega_analysis.dir/Implication.cpp.o.d"
  "CMakeFiles/omega_analysis.dir/Kills.cpp.o"
  "CMakeFiles/omega_analysis.dir/Kills.cpp.o.d"
  "CMakeFiles/omega_analysis.dir/Refine.cpp.o"
  "CMakeFiles/omega_analysis.dir/Refine.cpp.o.d"
  "CMakeFiles/omega_analysis.dir/Transforms.cpp.o"
  "CMakeFiles/omega_analysis.dir/Transforms.cpp.o.d"
  "libomega_analysis.a"
  "libomega_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
