file(REMOVE_RECURSE
  "libomega_analysis.a"
)
