file(REMOVE_RECURSE
  "CMakeFiles/omega_deps.dir/DepSpace.cpp.o"
  "CMakeFiles/omega_deps.dir/DepSpace.cpp.o.d"
  "CMakeFiles/omega_deps.dir/Dependence.cpp.o"
  "CMakeFiles/omega_deps.dir/Dependence.cpp.o.d"
  "CMakeFiles/omega_deps.dir/DependenceAnalysis.cpp.o"
  "CMakeFiles/omega_deps.dir/DependenceAnalysis.cpp.o.d"
  "libomega_deps.a"
  "libomega_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
