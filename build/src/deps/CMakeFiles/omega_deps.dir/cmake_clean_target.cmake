file(REMOVE_RECURSE
  "libomega_deps.a"
)
