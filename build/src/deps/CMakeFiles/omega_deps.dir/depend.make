# Empty dependencies file for omega_deps.
# This may be replaced when dependencies are built.
