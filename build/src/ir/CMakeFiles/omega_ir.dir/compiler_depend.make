# Empty compiler generated dependencies file for omega_ir.
# This may be replaced when dependencies are built.
