file(REMOVE_RECURSE
  "CMakeFiles/omega_ir.dir/AST.cpp.o"
  "CMakeFiles/omega_ir.dir/AST.cpp.o.d"
  "CMakeFiles/omega_ir.dir/AffineExpr.cpp.o"
  "CMakeFiles/omega_ir.dir/AffineExpr.cpp.o.d"
  "CMakeFiles/omega_ir.dir/Interp.cpp.o"
  "CMakeFiles/omega_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/omega_ir.dir/Lexer.cpp.o"
  "CMakeFiles/omega_ir.dir/Lexer.cpp.o.d"
  "CMakeFiles/omega_ir.dir/Parser.cpp.o"
  "CMakeFiles/omega_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/omega_ir.dir/Sema.cpp.o"
  "CMakeFiles/omega_ir.dir/Sema.cpp.o.d"
  "libomega_ir.a"
  "libomega_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
