file(REMOVE_RECURSE
  "libomega_ir.a"
)
