
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/AST.cpp" "src/ir/CMakeFiles/omega_ir.dir/AST.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/AST.cpp.o.d"
  "/root/repo/src/ir/AffineExpr.cpp" "src/ir/CMakeFiles/omega_ir.dir/AffineExpr.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/AffineExpr.cpp.o.d"
  "/root/repo/src/ir/Interp.cpp" "src/ir/CMakeFiles/omega_ir.dir/Interp.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/Interp.cpp.o.d"
  "/root/repo/src/ir/Lexer.cpp" "src/ir/CMakeFiles/omega_ir.dir/Lexer.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/Lexer.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/omega_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Sema.cpp" "src/ir/CMakeFiles/omega_ir.dir/Sema.cpp.o" "gcc" "src/ir/CMakeFiles/omega_ir.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/omega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
