# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_problem[1]_include.cmake")
include("/root/repo/build/tests/test_satisfiability[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_gist[1]_include.cmake")
include("/root/repo/build/tests/test_presburger[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_deps[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_cholsky[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_induction[1]_include.cmake")
include("/root/repo/build/tests/test_witness[1]_include.cmake")
include("/root/repo/build/tests/test_union[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_golden[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_calc[1]_include.cmake")
include("/root/repo/build/tests/test_elimination[1]_include.cmake")
include("/root/repo/build/tests/test_random_programs[1]_include.cmake")
include("/root/repo/build/tests/test_overflow[1]_include.cmake")
include("/root/repo/build/tests/test_restraints[1]_include.cmake")
include("/root/repo/build/tests/test_apply[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_depspace[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
