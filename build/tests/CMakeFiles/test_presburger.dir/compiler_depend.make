# Empty compiler generated dependencies file for test_presburger.
# This may be replaced when dependencies are built.
