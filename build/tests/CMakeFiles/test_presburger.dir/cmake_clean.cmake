file(REMOVE_RECURSE
  "CMakeFiles/test_presburger.dir/PresburgerTest.cpp.o"
  "CMakeFiles/test_presburger.dir/PresburgerTest.cpp.o.d"
  "test_presburger"
  "test_presburger.pdb"
  "test_presburger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
