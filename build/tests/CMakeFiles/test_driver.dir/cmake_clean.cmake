file(REMOVE_RECURSE
  "CMakeFiles/test_driver.dir/DriverTest.cpp.o"
  "CMakeFiles/test_driver.dir/DriverTest.cpp.o.d"
  "test_driver"
  "test_driver.pdb"
  "test_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
