file(REMOVE_RECURSE
  "CMakeFiles/test_induction.dir/InductionTest.cpp.o"
  "CMakeFiles/test_induction.dir/InductionTest.cpp.o.d"
  "test_induction"
  "test_induction.pdb"
  "test_induction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_induction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
