# Empty compiler generated dependencies file for test_induction.
# This may be replaced when dependencies are built.
