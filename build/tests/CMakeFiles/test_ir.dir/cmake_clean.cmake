file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/IRTest.cpp.o"
  "CMakeFiles/test_ir.dir/IRTest.cpp.o.d"
  "test_ir"
  "test_ir.pdb"
  "test_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
