# Empty compiler generated dependencies file for test_random_programs.
# This may be replaced when dependencies are built.
