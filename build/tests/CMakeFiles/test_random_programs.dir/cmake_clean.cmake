file(REMOVE_RECURSE
  "CMakeFiles/test_random_programs.dir/RandomProgramTest.cpp.o"
  "CMakeFiles/test_random_programs.dir/RandomProgramTest.cpp.o.d"
  "test_random_programs"
  "test_random_programs.pdb"
  "test_random_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
