# Empty compiler generated dependencies file for test_union.
# This may be replaced when dependencies are built.
