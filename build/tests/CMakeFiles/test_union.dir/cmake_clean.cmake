file(REMOVE_RECURSE
  "CMakeFiles/test_union.dir/UnionImplicationTest.cpp.o"
  "CMakeFiles/test_union.dir/UnionImplicationTest.cpp.o.d"
  "test_union"
  "test_union.pdb"
  "test_union[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
