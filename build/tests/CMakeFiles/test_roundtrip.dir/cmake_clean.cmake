file(REMOVE_RECURSE
  "CMakeFiles/test_roundtrip.dir/RoundTripTest.cpp.o"
  "CMakeFiles/test_roundtrip.dir/RoundTripTest.cpp.o.d"
  "test_roundtrip"
  "test_roundtrip.pdb"
  "test_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
