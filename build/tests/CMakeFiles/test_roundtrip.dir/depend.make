# Empty dependencies file for test_roundtrip.
# This may be replaced when dependencies are built.
