# Empty dependencies file for test_overflow.
# This may be replaced when dependencies are built.
