file(REMOVE_RECURSE
  "CMakeFiles/test_stress.dir/StressTest.cpp.o"
  "CMakeFiles/test_stress.dir/StressTest.cpp.o.d"
  "test_stress"
  "test_stress.pdb"
  "test_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
