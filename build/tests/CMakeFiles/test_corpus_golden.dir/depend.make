# Empty dependencies file for test_corpus_golden.
# This may be replaced when dependencies are built.
