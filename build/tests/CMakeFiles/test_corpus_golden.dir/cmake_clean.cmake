file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_golden.dir/CorpusGoldenTest.cpp.o"
  "CMakeFiles/test_corpus_golden.dir/CorpusGoldenTest.cpp.o.d"
  "test_corpus_golden"
  "test_corpus_golden.pdb"
  "test_corpus_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
