# Empty dependencies file for test_satisfiability.
# This may be replaced when dependencies are built.
