file(REMOVE_RECURSE
  "CMakeFiles/test_satisfiability.dir/SatisfiabilityTest.cpp.o"
  "CMakeFiles/test_satisfiability.dir/SatisfiabilityTest.cpp.o.d"
  "test_satisfiability"
  "test_satisfiability.pdb"
  "test_satisfiability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_satisfiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
