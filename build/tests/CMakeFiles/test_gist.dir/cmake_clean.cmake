file(REMOVE_RECURSE
  "CMakeFiles/test_gist.dir/GistTest.cpp.o"
  "CMakeFiles/test_gist.dir/GistTest.cpp.o.d"
  "test_gist"
  "test_gist.pdb"
  "test_gist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
