# Empty dependencies file for test_gist.
# This may be replaced when dependencies are built.
