file(REMOVE_RECURSE
  "CMakeFiles/test_restraints.dir/RestraintTest.cpp.o"
  "CMakeFiles/test_restraints.dir/RestraintTest.cpp.o.d"
  "test_restraints"
  "test_restraints.pdb"
  "test_restraints[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
