# Empty compiler generated dependencies file for test_restraints.
# This may be replaced when dependencies are built.
