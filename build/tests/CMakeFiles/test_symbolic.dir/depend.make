# Empty dependencies file for test_symbolic.
# This may be replaced when dependencies are built.
