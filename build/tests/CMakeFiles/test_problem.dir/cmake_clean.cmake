file(REMOVE_RECURSE
  "CMakeFiles/test_problem.dir/ProblemTest.cpp.o"
  "CMakeFiles/test_problem.dir/ProblemTest.cpp.o.d"
  "test_problem"
  "test_problem.pdb"
  "test_problem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
