# Empty compiler generated dependencies file for test_problem.
# This may be replaced when dependencies are built.
