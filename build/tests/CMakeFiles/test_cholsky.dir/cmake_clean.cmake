file(REMOVE_RECURSE
  "CMakeFiles/test_cholsky.dir/CholskyTest.cpp.o"
  "CMakeFiles/test_cholsky.dir/CholskyTest.cpp.o.d"
  "test_cholsky"
  "test_cholsky.pdb"
  "test_cholsky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
