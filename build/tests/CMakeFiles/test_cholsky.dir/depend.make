# Empty dependencies file for test_cholsky.
# This may be replaced when dependencies are built.
