file(REMOVE_RECURSE
  "CMakeFiles/test_projection.dir/ProjectionTest.cpp.o"
  "CMakeFiles/test_projection.dir/ProjectionTest.cpp.o.d"
  "test_projection"
  "test_projection.pdb"
  "test_projection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
