# Empty compiler generated dependencies file for test_projection.
# This may be replaced when dependencies are built.
