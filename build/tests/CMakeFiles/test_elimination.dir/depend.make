# Empty dependencies file for test_elimination.
# This may be replaced when dependencies are built.
