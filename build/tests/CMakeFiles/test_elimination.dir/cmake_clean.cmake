file(REMOVE_RECURSE
  "CMakeFiles/test_elimination.dir/EliminationTest.cpp.o"
  "CMakeFiles/test_elimination.dir/EliminationTest.cpp.o.d"
  "test_elimination"
  "test_elimination.pdb"
  "test_elimination[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
