# Empty dependencies file for test_depspace.
# This may be replaced when dependencies are built.
