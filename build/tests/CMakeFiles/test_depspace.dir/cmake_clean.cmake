file(REMOVE_RECURSE
  "CMakeFiles/test_depspace.dir/DepSpaceTest.cpp.o"
  "CMakeFiles/test_depspace.dir/DepSpaceTest.cpp.o.d"
  "test_depspace"
  "test_depspace.pdb"
  "test_depspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
