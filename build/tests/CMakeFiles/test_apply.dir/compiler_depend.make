# Empty compiler generated dependencies file for test_apply.
# This may be replaced when dependencies are built.
