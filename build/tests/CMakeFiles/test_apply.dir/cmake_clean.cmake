file(REMOVE_RECURSE
  "CMakeFiles/test_apply.dir/ApplyTest.cpp.o"
  "CMakeFiles/test_apply.dir/ApplyTest.cpp.o.d"
  "test_apply"
  "test_apply.pdb"
  "test_apply[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
