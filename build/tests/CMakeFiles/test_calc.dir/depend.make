# Empty dependencies file for test_calc.
# This may be replaced when dependencies are built.
