file(REMOVE_RECURSE
  "CMakeFiles/test_calc.dir/CalcTest.cpp.o"
  "CMakeFiles/test_calc.dir/CalcTest.cpp.o.d"
  "test_calc"
  "test_calc.pdb"
  "test_calc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
